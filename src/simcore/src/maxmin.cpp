#include "mtsched/simcore/maxmin.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mtsched/core/error.hpp"

namespace mtsched::simcore {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

void MaxMinSolver::solve(std::span<const double> capacities,
                         const UsesView& uses, std::span<double> rates) {
  const std::size_t num_res = capacities.size();
  const std::size_t num_act = uses.num_activities();
  MTSCHED_INVARIANT(rates.size() == num_act, "rates span mis-sized");

  const std::uint32_t* off = uses.offsets.data();
  const std::uint32_t* res = uses.resource.data();
  const double* wgt = uses.weight.data();

  for (std::size_t i = 0; i < num_act; ++i) rates[i] = kInf;
  free_cap_.assign(capacities.begin(), capacities.end());
  // load_ and binding_ are all-zero between solves (each round resets
  // exactly the entries it touched), so only a resize is needed here.
  if (load_.size() != num_res) {
    load_.assign(num_res, 0.0);
    binding_.assign(num_res, 0);
  }
  unfrozen_.clear();
  for (std::size_t i = 0; i < num_act; ++i) {
    if (off[i + 1] > off[i]) unfrozen_.push_back(i);
  }

  while (!unfrozen_.empty()) {
    // Load accumulation: ascending activity order, exactly as a
    // from-scratch refill over the full list would sum it — but touching
    // only unfrozen activities and remembering which resources got load.
    touched_.clear();
    for (const std::size_t i : unfrozen_) {
      for (std::uint32_t k = off[i]; k < off[i + 1]; ++k) {
        if (load_[res[k]] == 0.0) touched_.push_back(res[k]);
        load_[res[k]] += wgt[k];
      }
    }
    // The binding resource gives the smallest uniform rate.
    double rho = kInf;
    for (const std::size_t r : touched_) {
      rho = std::min(rho, std::max(0.0, free_cap_[r]) / load_[r]);
    }
    MTSCHED_INVARIANT(rho < kInf, "unfrozen activity uses no loaded resource");

    // Identify the binding resources from the pre-freeze snapshot, then
    // freeze every unfrozen activity touching one of them.
    for (const std::size_t r : touched_) {
      binding_[r] = std::max(0.0, free_cap_[r]) / load_[r] <= rho * (1.0 + 1e-12)
                        ? 1
                        : 0;
    }
    bool froze_any = false;
    std::size_t keep = 0;
    for (const std::size_t i : unfrozen_) {
      bool hit = false;
      for (std::uint32_t k = off[i]; k < off[i + 1]; ++k) {
        if (binding_[res[k]] != 0) {
          hit = true;
          break;
        }
      }
      if (hit) {
        rates[i] = rho;
        froze_any = true;
        for (std::uint32_t k = off[i]; k < off[i + 1]; ++k) {
          free_cap_[res[k]] -= wgt[k] * rho;
        }
      } else {
        unfrozen_[keep++] = i;
      }
    }
    unfrozen_.resize(keep);
    MTSCHED_INVARIANT(froze_any, "progressive filling made no progress");
    // Restore the all-zero invariant for the next round/solve.
    for (const std::size_t r : touched_) {
      load_[r] = 0.0;
      binding_[r] = 0;
    }
  }
}

void MaxMinSolver::solve(const std::vector<double>& capacities,
                         const std::vector<const std::vector<Use>*>& activities,
                         std::vector<double>& rates) {
  const std::size_t num_act = activities.size();
  pack_off_.clear();
  pack_res_.clear();
  pack_w_.clear();
  pack_off_.reserve(num_act + 1);
  pack_off_.push_back(0);
  for (const auto* uses : activities) {
    for (const auto& u : *uses) {
      pack_res_.push_back(static_cast<std::uint32_t>(u.resource));
      pack_w_.push_back(u.weight);
    }
    pack_off_.push_back(static_cast<std::uint32_t>(pack_res_.size()));
  }
  rates.resize(num_act);
  solve(std::span<const double>(capacities),
        UsesView{pack_off_, pack_res_, pack_w_},
        std::span<double>(rates));
}

std::vector<double> solve_max_min(const MaxMinProblem& problem) {
  const std::size_t num_res = problem.capacities.size();
  for (double c : problem.capacities)
    MTSCHED_REQUIRE(c > 0.0, "resource capacities must be positive");
  for (const auto& uses : problem.activities) {
    for (const auto& u : uses) {
      MTSCHED_REQUIRE(u.resource < num_res, "resource index out of range");
      MTSCHED_REQUIRE(u.weight > 0.0, "usage weights must be positive");
    }
  }

  std::vector<const std::vector<Use>*> views;
  views.reserve(problem.activities.size());
  for (const auto& uses : problem.activities) views.push_back(&uses);

  MaxMinSolver solver;
  std::vector<double> rates;
  solver.solve(problem.capacities, views, rates);
  return rates;
}

bool feasible(const MaxMinProblem& problem, const std::vector<double>& rates,
              double tol) {
  if (rates.size() != problem.activities.size()) return false;
  std::vector<double> usage(problem.capacities.size(), 0.0);
  for (std::size_t i = 0; i < problem.activities.size(); ++i) {
    const auto& uses = problem.activities[i];
    if (!uses.empty()) {
      if (!(rates[i] > 0.0) || std::isinf(rates[i])) return false;
      for (const auto& u : uses) usage[u.resource] += u.weight * rates[i];
    }
  }
  for (std::size_t r = 0; r < usage.size(); ++r) {
    if (usage[r] > problem.capacities[r] * (1.0 + tol)) return false;
  }
  return true;
}

}  // namespace mtsched::simcore
