// Tests for the metrics registry: instrument identity, histogram
// percentiles, type-mismatch detection, deterministic rendering, and
// concurrent updates (exercised under TSan in CI).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "mtsched/core/error.hpp"
#include "mtsched/obs/metrics.hpp"

namespace {

using namespace mtsched::obs;
using mtsched::core::InvalidArgument;

TEST(Metrics, CounterFindOrCreateReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("events");
  Counter& b = reg.counter("events");
  EXPECT_EQ(&a, &b);
  a.add();
  b.add(4);
  EXPECT_EQ(a.value(), 5u);
}

TEST(Metrics, GaugeKeepsLastValue) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("depth");
  g.set(2.0);
  g.set(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), -1.5);
}

TEST(Metrics, HistogramNearestRankPercentiles) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("latency");
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const auto s = h.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.p50, 50.0);
  EXPECT_DOUBLE_EQ(s.p95, 95.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
}

TEST(Metrics, EmptyHistogramSummaryIsZero) {
  MetricsRegistry reg;
  const auto s = reg.histogram("empty").summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(Metrics, SingleSampleHistogram) {
  MetricsRegistry reg;
  reg.histogram("one").observe(7.0);
  const auto s = reg.histogram("one").summary();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.p50, 7.0);
  EXPECT_DOUBLE_EQ(s.p95, 7.0);
}

TEST(Metrics, NameTypeMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), InvalidArgument);
  EXPECT_THROW(reg.histogram("x"), InvalidArgument);
}

TEST(Metrics, RenderIsNameSortedAndDeterministic) {
  MetricsRegistry reg;
  reg.histogram("b.hist").observe(1.0);
  reg.counter("a.count").add(3);
  reg.gauge("c.gauge").set(0.25);
  const std::string r1 = reg.render();
  const std::string r2 = reg.render();
  EXPECT_EQ(r1, r2);
  // Name order, independent of creation order.
  EXPECT_LT(r1.find("a.count"), r1.find("b.hist"));
  EXPECT_LT(r1.find("b.hist"), r1.find("c.gauge"));
  EXPECT_NE(r1.find("3"), std::string::npos);
}

TEST(Metrics, ConcurrentUpdatesAreSafe) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kOps = 1000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      // find-or-create races with updates from the other workers.
      Counter& c = reg.counter("shared.count");
      Histogram& h = reg.histogram("shared.hist");
      for (int i = 0; i < kOps; ++i) {
        c.add();
        h.observe(static_cast<double>(i));
        reg.gauge("shared.gauge").set(static_cast<double>(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.counter("shared.count").value(),
            static_cast<std::uint64_t>(kThreads * kOps));
  EXPECT_EQ(reg.histogram("shared.hist").summary().count,
            static_cast<std::size_t>(kThreads * kOps));
}

}  // namespace
