# Empty dependencies file for redist_test.
# This may be replaced when dependencies are built.
