file(REMOVE_RECURSE
  "CMakeFiles/tgrid_test.dir/tgrid_test.cpp.o"
  "CMakeFiles/tgrid_test.dir/tgrid_test.cpp.o.d"
  "tgrid_test"
  "tgrid_test.pdb"
  "tgrid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgrid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
