// Execution traces and Gantt charts: replay one schedule both in the
// simulator and on the emulated cluster and compare the two timelines.
//
// Run:  ./gantt_trace [dag-seed]
#include <iostream>

#include "mtsched/dag/export.hpp"
#include "mtsched/dag/generator.hpp"
#include "mtsched/exp/lab.hpp"
#include "mtsched/models/cost_model.hpp"
#include "mtsched/sched/allocation.hpp"
#include "mtsched/sched/mapping.hpp"
#include "mtsched/sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace mtsched;

  dag::DagGenParams params;
  params.width = 4;
  params.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;
  const auto inst = dag::generate_random_dag(params);
  std::cout << "workflow (Graphviz DOT):\n"
            << dag::to_dot(inst.graph, "workflow") << '\n';

  exp::Lab lab;
  const auto& model = lab.profile();
  const models::SchedCostAdapter cost(model);
  const sched::HcpaAllocator hcpa;
  const auto schedule =
      sched::TwoStepScheduler(hcpa, cost, lab.spec().num_nodes)
          .schedule(inst.graph);

  std::vector<std::vector<int>> procs_of_task;
  for (const auto& pl : schedule.placements) procs_of_task.push_back(pl.procs);

  const auto sim_trace = sim::Simulator(model).run(inst.graph, schedule);
  std::cout << "--- simulated timeline (profile model), makespan "
            << sim_trace.makespan << " s ---\n"
            << sim_trace.ascii_gantt(inst.graph, procs_of_task,
                                     lab.spec().num_nodes)
            << '\n';

  const auto exp_trace = lab.rig().run(inst.graph, schedule, /*seed=*/42);
  std::cout << "--- experimental timeline (TGrid emulator), makespan "
            << exp_trace.makespan << " s ---\n"
            << exp_trace.ascii_gantt(inst.graph, procs_of_task,
                                     lab.spec().num_nodes)
            << '\n';

  std::cout << "--- experimental trace (CSV) ---\n" << exp_trace.to_csv();
  std::cout << "\nlegend: 's' = startup (JVM spawn), letters = computing "
               "task A..Z, '.' = idle\n";
  return 0;
}
