# Empty dependencies file for fig5_profile_vs_experiment.
# This may be replaced when dependencies are built.
