# Empty dependencies file for mtsched_tgrid.
# This may be replaced when dependencies are built.
