#include "mtsched/machine/machine_model.hpp"

namespace mtsched::machine {

double MachineModel::exec_time_sample(dag::TaskKernel k, int n, int p,
                                      core::Rng& rng) const {
  return exec_time_mean(k, n, p) * rng.lognormal_unit(noise_sigma());
}

double MachineModel::startup_sample(int p, core::Rng& rng) const {
  return startup_mean(p) * rng.lognormal_unit(noise_sigma());
}

double MachineModel::redist_overhead_sample(int p_src, int p_dst,
                                            core::Rng& rng) const {
  return redist_overhead_mean(p_src, p_dst) *
         rng.lognormal_unit(noise_sigma());
}

}  // namespace mtsched::machine
