// Tests for the CPA-family allocation phase.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "mtsched/core/error.hpp"
#include "mtsched/dag/generator.hpp"
#include "mtsched/sched/allocation.hpp"

namespace {

using namespace mtsched::sched;
using namespace mtsched::dag;
using mtsched::core::InvalidArgument;

/// Ideal-speedup cost: tau(t, p) = W(t)/p (+ optional fixed startup).
class IdealCost final : public SchedCost {
 public:
  explicit IdealCost(double startup = 0.0) : startup_(startup) {}
  double exec_time(const Task& t, int p) const override {
    return kernel_flops(t.kernel, t.matrix_dim) / 1e9 / p;
  }
  double startup_time(int) const override { return startup_; }
  double redist_time(const Task&, int, int) const override { return 0.0; }

 private:
  double startup_;
};

Dag chain(int len, TaskKernel k = TaskKernel::MatMul, int n = 2000) {
  Dag g;
  TaskId prev = kInvalidTask;
  for (int i = 0; i < len; ++i) {
    const auto id = g.add_task(k, n);
    if (prev != kInvalidTask) g.add_edge(prev, id);
    prev = id;
  }
  return g;
}

Dag fork_join(int width, int n = 2000) {
  Dag g;
  const auto src = g.add_task(TaskKernel::MatMul, n);
  const auto sink = g.add_task(TaskKernel::MatMul, n);
  for (int i = 0; i < width; ++i) {
    const auto mid = g.add_task(TaskKernel::MatMul, n);
    g.add_edge(src, mid);
    g.add_edge(mid, sink);
  }
  return g;
}

TEST(Cpa, ChainGrowsAllocationsOnIdealCurves) {
  // A pure chain is all critical path; with ideal speedup and no area
  // penalty (area constant in p), CPA grows until T_CP <= T_A.
  const auto g = chain(4);
  const IdealCost cost;
  const auto alloc = CpaAllocator{}.allocate(g, cost, 32);
  for (int a : alloc) EXPECT_GT(a, 1);
}

TEST(Cpa, AllocationsWithinBounds) {
  const auto g = fork_join(4);
  const IdealCost cost;
  for (int P : {1, 2, 8, 32}) {
    const auto alloc = CpaAllocator{}.allocate(g, cost, P);
    for (int a : alloc) {
      EXPECT_GE(a, 1);
      EXPECT_LE(a, P);
    }
  }
}

TEST(Cpa, SingleProcessorClusterKeepsOnes) {
  const auto g = chain(3);
  const IdealCost cost;
  const auto alloc = CpaAllocator{}.allocate(g, cost, 1);
  for (int a : alloc) EXPECT_EQ(a, 1);
}

TEST(Cpa, StopsAtAverageAreaCriterion) {
  const auto g = fork_join(6);
  const IdealCost cost;
  const auto alloc = CpaAllocator{}.allocate(g, cost, 32);
  const auto m = cpa_metrics(g, cost, alloc, 32);
  // After termination either the criterion holds or everything is at P.
  bool all_maxed = true;
  for (int a : alloc) all_maxed = all_maxed && (a == 32);
  EXPECT_TRUE(m.t_cp <= m.t_a * (1.0 + 1e-9) || all_maxed);
}

TEST(Hcpa, RespectsSelfConstrainedCap) {
  // fork_join(4) has a 4-wide middle level: cap = ceil(32/4) = 8.
  const auto g = fork_join(4);
  const IdealCost cost;
  const auto alloc = HcpaAllocator{}.allocate(g, cost, 32);
  for (int a : alloc) EXPECT_LE(a, 8);
}

TEST(Hcpa, CapDependsOnWidth) {
  const IdealCost cost;
  const auto wide = HcpaAllocator{}.allocate(fork_join(8), cost, 32);
  const auto narrow = HcpaAllocator{}.allocate(fork_join(2), cost, 32);
  int wide_max = 0, narrow_max = 0;
  for (int a : wide) wide_max = std::max(wide_max, a);
  for (int a : narrow) narrow_max = std::max(narrow_max, a);
  EXPECT_LE(wide_max, 4);    // ceil(32/8)
  EXPECT_LE(narrow_max, 16); // ceil(32/2)
  EXPECT_GT(narrow_max, wide_max);
}

TEST(Hcpa, EfficiencyGateBindsOnSaturatingCurves) {
  // tau(p) = W/p + 1.0: efficiency decays with p, so the 0.8 gate stops
  // growth well before the cap.
  class Saturating final : public SchedCost {
   public:
    double exec_time(const Task&, int p) const override {
      return 100.0 / p + 1.0;
    }
    double startup_time(int) const override { return 0.0; }
    double redist_time(const Task&, int, int) const override { return 0.0; }
  };
  const auto g = chain(3);
  const auto alloc = HcpaAllocator{}.allocate(g, Saturating{}, 32);
  // e(p) = 101 / (p * (100/p + 1)) = 101/(100 + p); e >= 0.8 -> p <= 26;
  // but the chain cap is 32, so the gate is what binds.
  for (int a : alloc) EXPECT_LE(a, 27);
}

TEST(Hcpa, InvalidEfficiencyRejected) {
  EXPECT_THROW(HcpaAllocator{0.0}, InvalidArgument);
  EXPECT_THROW(HcpaAllocator{1.5}, InvalidArgument);
}

TEST(Mcpa, LevelAllocationsNeverExceedP) {
  // The budget is max(P, level width): every task keeps at least one
  // processor, so a level wider than the machine starts over budget and
  // simply never grows.
  const IdealCost cost;
  for (int width : {2, 4, 8}) {
    const auto g = fork_join(width);
    const auto levels = g.precedence_levels();
    std::vector<int> level_width(g.num_levels(), 0);
    for (TaskId t = 0; t < g.num_tasks(); ++t) ++level_width[levels[t]];
    for (int P : {4, 16, 32}) {
      const auto alloc = McpaAllocator{}.allocate(g, cost, P);
      std::vector<int> per_level(g.num_levels(), 0);
      for (TaskId t = 0; t < g.num_tasks(); ++t) {
        per_level[levels[t]] += alloc[t];
      }
      for (int l = 0; l < g.num_levels(); ++l) {
        EXPECT_LE(per_level[l], std::max(P, level_width[l]));
      }
    }
  }
}

TEST(Mcpa, SingleTaskLevelsCanUseWholeMachine) {
  const auto g = chain(3);
  const IdealCost cost;
  const auto alloc = McpaAllocator{}.allocate(g, cost, 32);
  // Nothing caps a chain under MCPA except the CPA criterion itself.
  int max_alloc = 0;
  for (int a : alloc) max_alloc = std::max(max_alloc, a);
  EXPECT_GT(max_alloc, 8);
}

TEST(Baselines, SerialAndMaxPar) {
  const auto g = fork_join(3);
  const IdealCost cost;
  const auto seq = SerialAllocator{}.allocate(g, cost, 32);
  const auto maxp = MaxParAllocator{}.allocate(g, cost, 32);
  for (int a : seq) EXPECT_EQ(a, 1);
  for (int a : maxp) EXPECT_EQ(a, 32);
}

TEST(Factory, KnownAndUnknownNames) {
  for (const char* name : {"CPA", "HCPA", "MCPA", "SEQ", "MAXPAR"}) {
    EXPECT_EQ(make_allocator(name)->name(), name);
  }
  EXPECT_THROW(make_allocator("HEFT"), InvalidArgument);
}

TEST(Allocation, EmptyDagRejected) {
  Dag g;
  const IdealCost cost;
  EXPECT_THROW(CpaAllocator{}.allocate(g, cost, 4), InvalidArgument);
}

TEST(Allocation, InvalidPRejected) {
  const auto g = chain(2);
  const IdealCost cost;
  EXPECT_THROW(CpaAllocator{}.allocate(g, cost, 0), InvalidArgument);
}

TEST(CpaMetrics, MatchesHandComputation) {
  // Two independent tasks, P = 4, all allocations 1.
  Dag g;
  g.add_task(TaskKernel::MatMul, 2000);  // W = 16e9 flops -> tau = 16 s
  g.add_task(TaskKernel::MatMul, 2000);
  const IdealCost cost;
  const auto m = cpa_metrics(g, cost, {1, 1}, 4);
  EXPECT_DOUBLE_EQ(m.t_cp, 16.0);
  EXPECT_DOUBLE_EQ(m.t_a, (16.0 + 16.0) / 4.0);
}

TEST(CpaMetrics, SizeMismatchThrows) {
  const auto g = chain(3);
  const IdealCost cost;
  EXPECT_THROW(cpa_metrics(g, cost, {1, 1}, 4), InvalidArgument);
}

/// Property sweep over the Table I suite: all three algorithms produce
/// valid allocations, MCPA respects level budgets and HCPA respects its
/// width cap, under a cost model with realistic overheads.
class AllocatorProperties : public ::testing::TestWithParam<std::size_t> {
 protected:
  static const std::vector<GeneratedDag>& suite() {
    static const auto s = generate_table1_suite();
    return s;
  }
};

TEST_P(AllocatorProperties, AllAlgorithmsProduceValidAllocations) {
  const auto& inst = suite()[GetParam()];
  const IdealCost cost(/*startup=*/1.0);
  const int P = 32;
  for (const char* name : {"CPA", "HCPA", "MCPA"}) {
    const auto alloc = make_allocator(name)->allocate(inst.graph, cost, P);
    ASSERT_EQ(alloc.size(), inst.graph.num_tasks());
    for (int a : alloc) {
      EXPECT_GE(a, 1);
      EXPECT_LE(a, P);
    }
  }
  // MCPA level budgets.
  const auto mcpa = McpaAllocator{}.allocate(inst.graph, cost, P);
  const auto levels = inst.graph.precedence_levels();
  std::vector<int> per_level(inst.graph.num_levels(), 0);
  for (TaskId t = 0; t < inst.graph.num_tasks(); ++t) {
    per_level[levels[t]] += mcpa[t];
  }
  for (int total : per_level) EXPECT_LE(total, P);
}

INSTANTIATE_TEST_SUITE_P(Table1, AllocatorProperties,
                         ::testing::Range<std::size_t>(0, 54, 5));

/// Naive CPA reference: recomputes levels and the average area from
/// scratch every iteration, exactly as the pre-incremental implementation
/// did. The production skeleton (cached topology, delta level updates,
/// memoized task times) must match it allocation-for-allocation.
std::vector<int> reference_cpa(const Dag& g, const SchedCost& cost, int P) {
  constexpr double kEps = 1e-12;
  const std::size_t n = g.num_tasks();
  std::vector<int> alloc(n, 1);
  std::vector<double> tau(n);
  for (TaskId t = 0; t < n; ++t) tau[t] = cost.task_time(g.task(t), 1);
  const std::size_t max_iter = n * static_cast<std::size_t>(P);
  for (std::size_t iter = 0; iter < max_iter; ++iter) {
    // Full top/bottom-level DP.
    std::vector<double> top(n, 0.0), bottom(n, 0.0);
    const auto order = g.topological_order();
    for (TaskId t : order) {
      for (TaskId p : g.predecessors(t)) {
        top[t] = std::max(top[t], top[p] + tau[p]);
      }
    }
    double t_cp = 0.0;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const TaskId t = *it;
      bottom[t] = tau[t];
      for (TaskId s : g.successors(t)) {
        bottom[t] = std::max(bottom[t], tau[t] + bottom[s]);
      }
      t_cp = std::max(t_cp, top[t] + bottom[t]);
    }
    // Full average area with fresh cost calls.
    double area = 0.0;
    for (TaskId t = 0; t < n; ++t) {
      area += static_cast<double>(alloc[t]) * cost.task_time(g.task(t), alloc[t]);
    }
    const double t_a = area / static_cast<double>(P);
    if (t_cp <= t_a + kEps) break;
    TaskId best = kInvalidTask;
    double best_gain = -std::numeric_limits<double>::infinity();
    for (TaskId t = 0; t < n; ++t) {
      if (top[t] + bottom[t] < t_cp - 1e-9 * t_cp) continue;
      if (alloc[t] >= P) continue;
      const double tau_new = cost.task_time(g.task(t), alloc[t] + 1);
      const double gain = tau[t] / static_cast<double>(alloc[t]) -
                          tau_new / static_cast<double>(alloc[t] + 1);
      if (gain > best_gain + kEps) {
        best_gain = gain;
        best = t;
      }
    }
    if (best == kInvalidTask) break;
    alloc[best] += 1;
    tau[best] = cost.task_time(g.task(best), alloc[best]);
  }
  return alloc;
}

class CpaEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(CpaEquivalence, IncrementalSkeletonMatchesNaiveReference) {
  DagGenParams p;
  p.num_tasks = 40 + GetParam() * 23;
  p.width = 2 + GetParam() % 5;
  p.add_ratio = 0.4;
  p.matrix_dim = 1000 + 200 * (GetParam() % 4);
  p.seed = static_cast<std::uint64_t>(GetParam()) * 101 + 3;
  const auto inst = generate_random_dag(p);
  // Startup makes the speedup curves non-ideal, so gains shrink and the
  // best-candidate comparisons are genuinely exercised.
  const IdealCost cost(/*startup=*/0.2);
  for (int P : {4, 16}) {
    const auto fast = CpaAllocator{}.allocate(inst.graph, cost, P);
    const auto ref = reference_cpa(inst.graph, cost, P);
    // Exact equality: the incremental level updates and memoized cost
    // curves must not shift a single growth decision.
    EXPECT_EQ(fast, ref) << "tasks=" << p.num_tasks << " P=" << P;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDags, CpaEquivalence, ::testing::Range(0, 8));

}  // namespace
