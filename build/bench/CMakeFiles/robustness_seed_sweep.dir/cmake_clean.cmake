file(REMOVE_RECURSE
  "CMakeFiles/robustness_seed_sweep.dir/robustness_seed_sweep.cpp.o"
  "CMakeFiles/robustness_seed_sweep.dir/robustness_seed_sweep.cpp.o.d"
  "robustness_seed_sweep"
  "robustness_seed_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_seed_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
