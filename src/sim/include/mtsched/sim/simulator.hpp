// The simulator front-end: replays a schedule on the discrete-event engine
// under a given cost model and reports the simulated makespan and trace.
//
// Replay semantics (identical to the execution framework's, minus its
// real-world overdynamics):
//   * a task seizes its processors when all tasks preceding it in any of
//     its processors' orders have finished;
//   * a redistribution starts when its producer finishes: the model's
//     protocol overhead (zero for the analytical model) elapses first,
//     then the payload is transferred through the simulated network as a
//     communication-only parallel task (contention included);
//   * a task begins executing when it has its processors and all inbound
//     redistributions are done; its execution is either a fluid parallel
//     task (analytical model: flop vector + ring byte matrix) or a fixed
//     duration (profile/empirical models: measured/regressed time plus
//     startup overhead);
//   * the makespan is the completion time of the last task.
//
// The simulator is deterministic: no randomness exists in any cost model.
#pragma once

#include "mtsched/dag/dag.hpp"
#include "mtsched/models/cost_model.hpp"
#include "mtsched/obs/trace.hpp"
#include "mtsched/platform/cluster.hpp"
#include "mtsched/sched/schedule.hpp"
#include "mtsched/sched/trace.hpp"

namespace mtsched::sim {

class Simulator {
 public:
  /// `model` must outlive the simulator. The platform spec is taken from
  /// the model (cost models are platform-bound). When `trace` is a live
  /// track, replay spans and engine events go there; when disabled (the
  /// default), each run() falls back to the calling thread's
  /// obs::current_track().
  explicit Simulator(const models::CostModel& model, obs::Track trace = {});

  /// Simulates one schedule replay. Validates the schedule first.
  sched::RunTrace run(const dag::Dag& g, const sched::Schedule& s) const;

  /// Convenience: simulated makespan only.
  double makespan(const dag::Dag& g, const sched::Schedule& s) const;

  const models::CostModel& model() const { return model_; }

 private:
  const models::CostModel& model_;
  obs::Track trace_;
};

}  // namespace mtsched::sim
