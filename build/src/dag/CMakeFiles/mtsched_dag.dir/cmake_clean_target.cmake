file(REMOVE_RECURSE
  "libmtsched_dag.a"
)
