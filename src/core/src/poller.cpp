#include "mtsched/core/poller.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "mtsched/core/error.hpp"

namespace mtsched::core::net {

namespace {

void set_nonblock_fd(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw Error(std::string("cannot make fd non-blocking: ") +
                std::strerror(errno));
  }
}

short to_poll_events(short interest) {
  short ev = 0;
  if (interest & Poller::kRead) ev |= POLLIN;
  if (interest & Poller::kWrite) ev |= POLLOUT;
  return ev;
}

}  // namespace

Poller::Poller() {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    throw Error(std::string("cannot create poller wake pipe: ") +
                std::strerror(errno));
  }
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  // Both ends non-blocking: wake() never blocks on a full pipe (one
  // pending byte is enough to wake), draining never blocks on an empty
  // one.
  set_nonblock_fd(wake_read_);
  set_nonblock_fd(wake_write_);
  fds_.push_back(pollfd{wake_read_, POLLIN, 0});
}

Poller::~Poller() {
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
}

std::size_t Poller::size() const { return fds_.size() - 1; }

std::size_t Poller::index_of(int fd) const {
  for (std::size_t i = 1; i < fds_.size(); ++i) {
    if (fds_[i].fd == fd) return i;
  }
  throw InternalError("fd " + std::to_string(fd) +
                      " is not registered with this poller");
}

void Poller::add(int fd, short interest) {
  MTSCHED_REQUIRE(fd >= 0, "cannot poll an invalid fd");
  for (std::size_t i = 1; i < fds_.size(); ++i) {
    MTSCHED_REQUIRE(fds_[i].fd != fd,
                    "fd " + std::to_string(fd) + " is already registered");
  }
  fds_.push_back(pollfd{fd, to_poll_events(interest), 0});
}

void Poller::set(int fd, short interest) {
  fds_[index_of(fd)].events = to_poll_events(interest);
}

void Poller::remove(int fd) {
  const std::size_t i = index_of(fd);
  fds_[i] = fds_.back();
  fds_.pop_back();
}

const std::vector<Poller::Event>& Poller::wait(int timeout_ms) {
  events_.clear();
  int ready;
  do {
    ready = ::poll(fds_.data(), fds_.size(), timeout_ms);
  } while (ready < 0 && errno == EINTR);
  if (ready < 0) {
    throw Error(std::string("poll failed: ") + std::strerror(errno));
  }
  if (fds_[0].revents != 0) {
    char buf[64];
    while (::read(wake_read_, buf, sizeof(buf)) > 0) {
    }
  }
  for (std::size_t i = 1; i < fds_.size(); ++i) {
    const short re = fds_[i].revents;
    if (re == 0) continue;
    Event ev;
    ev.fd = fds_[i].fd;
    ev.readable = (re & POLLIN) != 0;
    ev.writable = (re & POLLOUT) != 0;
    ev.error = (re & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    events_.push_back(ev);
  }
  return events_;
}

void Poller::wake() {
  const char byte = 1;
  // EAGAIN means a wake is already pending — exactly as good.
  [[maybe_unused]] const ssize_t n = ::write(wake_write_, &byte, 1);
}

}  // namespace mtsched::core::net
