// Cost-model factory: the one place that knows every CostModelKind, its
// user-facing name, and how to construct the matching model.
//
// Callers that used to hard-code "analytical"/"profile"/"empirical"
// string switches (the CLI, the lab, the benches) go through this
// registry instead, so adding a model kind means touching exactly one
// translation unit.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mtsched/models/cost_model.hpp"
#include "mtsched/models/empirical.hpp"
#include "mtsched/models/profile.hpp"
#include "mtsched/platform/cluster.hpp"

namespace mtsched::models {

/// Which cost model, plus everything its constructor may need — the one
/// currency for naming a model across the lab, the factory, the CLI and
/// the service layer (no more parallel string/enum arguments).
///
/// `platform` is always required for construction; the table/fit pointers
/// are only dereferenced by the kinds that need them (Profile and
/// Empirical respectively) and must outlive the call. Resolution-only
/// consumers (exp::Lab::model, the rpc layer) read `kind` alone and
/// ignore the construction params.
struct ModelSpec {
  CostModelKind kind = CostModelKind::Profile;
  platform::ClusterSpec platform;
  const ProfileTables* profile = nullptr;
  const EmpiricalFits* empirical = nullptr;

  /// Name -> spec with default construction params. Throws
  /// core::InvalidArgument listing the valid names.
  static ModelSpec parse(const std::string& name);

  /// The user-facing name of `kind` ("analytical", "profile", ...).
  std::string name() const;
};

/// Every registered kind, in enum (= paper presentation) order.
const std::vector<CostModelKind>& all_kinds();

/// Name -> kind. Throws core::InvalidArgument listing the valid names.
CostModelKind parse_kind(const std::string& name);

/// Comma-separated names -> kinds. Throws core::InvalidArgument on an
/// unknown name or an empty list.
std::vector<CostModelKind> parse_kind_list(const std::string& csv);

/// Builds the model `spec` describes. Throws core::InvalidArgument when
/// the params required by spec.kind are missing.
std::unique_ptr<CostModel> make_cost_model(const ModelSpec& spec);

}  // namespace mtsched::models
