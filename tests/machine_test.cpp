// Tests for the ground-truth machine behaviour models.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "mtsched/core/error.hpp"
#include "mtsched/machine/java_cluster.hpp"
#include "mtsched/machine/pdgemm.hpp"
#include "mtsched/stats/regression.hpp"

namespace {

using namespace mtsched::machine;
using mtsched::dag::TaskKernel;
using mtsched::core::InvalidArgument;

TEST(JavaCluster, EfficiencyWithinConfiguredBounds) {
  JavaClusterModel m;
  const auto& cfg = m.config();
  for (TaskKernel k : {TaskKernel::MatMul, TaskKernel::MatAdd}) {
    for (int n : {2000, 3000}) {
      for (int p = 1; p <= 32; ++p) {
        const double e = m.efficiency(k, n, p);
        EXPECT_GE(e, cfg.eff_floor);
        EXPECT_LE(e, cfg.eff_ceil);
      }
    }
  }
}

TEST(JavaCluster, OutliersAtEightAndSixteen) {
  JavaClusterModel m;
  EXPECT_GT(m.outlier_factor(3000, 8), 1.3);
  EXPECT_GT(m.outlier_factor(3000, 16), 1.2);
  EXPECT_GT(m.outlier_factor(2000, 8), 1.0);
  EXPECT_DOUBLE_EQ(m.outlier_factor(3000, 9), 1.0);
  EXPECT_DOUBLE_EQ(m.outlier_factor(2000, 20), 1.0);
  // n = 3000 outliers are stronger than n = 2000 ones (paper VII-A).
  EXPECT_GT(m.outlier_factor(3000, 8), m.outlier_factor(2000, 8));
}

TEST(JavaCluster, OutlierVisibleInExecutionTime) {
  // Two machines differing only in the outlier factor: at (n=3000, p=8)
  // the execution time is inflated by exactly that factor (modulo the
  // compute/comm split).
  JavaClusterConfig with = {};
  JavaClusterConfig without = {};
  without.outlier_p8_n3000 = 1.0;
  const JavaClusterModel mw(with), mo(without);
  const double tw = mw.exec_time_mean(TaskKernel::MatMul, 3000, 8);
  const double to = mo.exec_time_mean(TaskKernel::MatMul, 3000, 8);
  EXPECT_GT(tw, to * 1.25);
  // Other points are untouched.
  EXPECT_DOUBLE_EQ(mw.exec_time_mean(TaskKernel::MatMul, 3000, 9),
                   mo.exec_time_mean(TaskKernel::MatMul, 3000, 9));
}

TEST(JavaCluster, ExecutionSlowerThanAnalyticalPrediction) {
  // The machine runs below the calibrated nominal speed (the gap the
  // paper's Figure 2 quantifies).
  JavaClusterModel m;
  for (int p : {1, 4, 16, 32}) {
    const double analytical =
        mtsched::dag::kernel_flops(TaskKernel::MatMul, 2000) / p / 250e6;
    EXPECT_GT(m.exec_time_mean(TaskKernel::MatMul, 2000, p), analytical);
  }
}

TEST(JavaCluster, OverAllocationEventuallyHurts) {
  // The sync term creates a real optimum below 32 for n = 2000 (the
  // regime of Table II's positive linear slope).
  JavaClusterModel m;
  double best_p = 1;
  double best = m.exec_time_mean(TaskKernel::MatMul, 2000, 1);
  for (int p = 2; p <= 32; ++p) {
    const double t = m.exec_time_mean(TaskKernel::MatMul, 2000, p);
    if (t < best) {
      best = t;
      best_p = p;
    }
  }
  EXPECT_LT(best_p, 30);
  EXPECT_GT(m.exec_time_mean(TaskKernel::MatMul, 2000, 32), best);
}

TEST(JavaCluster, StartupShapeMatchesFigure3) {
  JavaClusterModel m;
  // Roughly 0.7-0.9 s at p=1 and 1.2-1.8 s at p=32, never tiny.
  EXPECT_GT(m.startup_mean(1), 0.5);
  EXPECT_LT(m.startup_mean(1), 1.1);
  EXPECT_GT(m.startup_mean(32), 1.0);
  EXPECT_LT(m.startup_mean(32), 2.2);
  for (int p = 1; p <= 32; ++p) EXPECT_GT(m.startup_mean(p), 0.05);
}

TEST(JavaCluster, StartupIsNotMonotonic) {
  // The paper notes, with surprise, that average startup time is not
  // monotonically increasing in p.
  JavaClusterModel m;
  bool any_decrease = false;
  for (int p = 2; p <= 32; ++p) {
    if (m.startup_mean(p) < m.startup_mean(p - 1)) any_decrease = true;
  }
  EXPECT_TRUE(any_decrease);
}

TEST(JavaCluster, RedistOverheadDominatedByDestination) {
  JavaClusterModel m;
  // Effect of p_dst at fixed p_src is much larger than vice versa.
  const double d_span = m.redist_overhead_mean(16, 32) -
                        m.redist_overhead_mean(16, 1);
  const double s_span = m.redist_overhead_mean(32, 16) -
                        m.redist_overhead_mean(1, 16);
  EXPECT_GT(d_span, 4.0 * s_span);
  EXPECT_GT(d_span, 0.1);  // Figure 4's scale: hundreds of ms
}

TEST(JavaCluster, RedistOverheadLinearFitMatchesTable2Shape) {
  // A linear fit over p_dst yields a clearly positive slope and an
  // intercept around 0.1 s, like Table II's (7.88 ms, 108.58 ms).
  JavaClusterModel m;
  std::vector<double> x, y;
  for (int d = 1; d <= 32; ++d) {
    x.push_back(d);
    double sum = 0.0;
    for (int s = 1; s <= 32; ++s) sum += m.redist_overhead_mean(s, d);
    y.push_back(sum / 32.0);
  }
  const auto f = mtsched::stats::fit_linear(x, y);
  EXPECT_GT(f.a, 0.004);
  EXPECT_LT(f.a, 0.015);
  EXPECT_GT(f.b, 0.05);
  EXPECT_LT(f.b, 0.2);
}

TEST(JavaCluster, SamplesAverageToTheMean) {
  JavaClusterModel m;
  mtsched::core::Rng rng(5);
  const double mean = m.exec_time_mean(TaskKernel::MatMul, 2000, 4);
  double sum = 0.0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    sum += m.exec_time_sample(TaskKernel::MatMul, 2000, 4, rng);
  }
  EXPECT_NEAR(sum / trials, mean, mean * 0.01);
}

TEST(JavaCluster, SamplesVaryAcrossDraws) {
  JavaClusterModel m;
  mtsched::core::Rng rng(6);
  const double a = m.startup_sample(8, rng);
  const double b = m.startup_sample(8, rng);
  EXPECT_NE(a, b);
}

TEST(JavaCluster, RangeValidation) {
  JavaClusterModel m;
  EXPECT_THROW(m.exec_time_mean(TaskKernel::MatMul, 2000, 0),
               InvalidArgument);
  EXPECT_THROW(m.exec_time_mean(TaskKernel::MatMul, 2000, 33),
               InvalidArgument);
  EXPECT_THROW(m.startup_mean(0), InvalidArgument);
  EXPECT_THROW(m.redist_overhead_mean(0, 1), InvalidArgument);
  EXPECT_THROW(m.redist_overhead_mean(1, 40), InvalidArgument);
}

TEST(JavaCluster, ConfigValidation) {
  JavaClusterConfig cfg;
  cfg.num_nodes = 0;
  EXPECT_THROW(JavaClusterModel{cfg}, InvalidArgument);
  cfg = {};
  cfg.nominal_flops = -1.0;
  EXPECT_THROW(JavaClusterModel{cfg}, InvalidArgument);
  cfg = {};
  cfg.eff_floor = 0.9;
  cfg.eff_ceil = 0.5;
  EXPECT_THROW(JavaClusterModel{cfg}, InvalidArgument);
}

TEST(JavaCluster, PlatformSpecMatchesConfiguration) {
  JavaClusterConfig cfg;
  cfg.num_nodes = 16;
  cfg.nominal_flops = 123e6;
  const JavaClusterModel m(cfg);
  const auto spec = m.platform_spec();
  EXPECT_EQ(spec.num_nodes, 16);
  EXPECT_DOUBLE_EQ(spec.node.flops, 123e6);
}

TEST(JavaCluster, InternalCommOnlyForParallelMultiplication) {
  JavaClusterModel m;
  EXPECT_DOUBLE_EQ(m.internal_comm_time(TaskKernel::MatAdd, 2000, 8), 0.0);
  EXPECT_DOUBLE_EQ(m.internal_comm_time(TaskKernel::MatMul, 2000, 1), 0.0);
  EXPECT_GT(m.internal_comm_time(TaskKernel::MatMul, 2000, 8), 0.0);
}

TEST(ProcessGrid, MostSquareFactorization) {
  EXPECT_EQ(process_grid(1), std::make_pair(1, 1));
  EXPECT_EQ(process_grid(12), std::make_pair(3, 4));
  EXPECT_EQ(process_grid(16), std::make_pair(4, 4));
  EXPECT_EQ(process_grid(17), std::make_pair(1, 17));
  EXPECT_EQ(process_grid(30), std::make_pair(5, 6));
}

TEST(Pdgemm, EfficiencyIsTight) {
  // Figure 2 (right): the optimized kernel errs ~10 %, up to ~20 %.
  PdgemmMachineModel m;
  for (int n : {1024, 2048, 4096}) {
    for (int p = 1; p <= 32; ++p) {
      const double e = m.efficiency(n, p);
      EXPECT_GE(e, 0.70);
      EXPECT_LE(e, 1.0);
    }
  }
}

TEST(Pdgemm, OnlyMultiplicationSupported) {
  PdgemmMachineModel m;
  EXPECT_THROW(m.exec_time_mean(TaskKernel::MatAdd, 1024, 4),
               InvalidArgument);
  EXPECT_GT(m.exec_time_mean(TaskKernel::MatMul, 1024, 4), 0.0);
}

TEST(Pdgemm, OverheadsAreSmall) {
  PdgemmMachineModel m;
  EXPECT_LT(m.startup_mean(32), 0.2);
  EXPECT_LT(m.redist_overhead_mean(32, 32), 0.02);
}

/// Sweep: execution means are positive and finite over the full domain of
/// both machines.
class ExecDomain
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ExecDomain, JavaPositiveFinite) {
  const auto [n, p] = GetParam();
  JavaClusterModel m;
  for (TaskKernel k : {TaskKernel::MatMul, TaskKernel::MatAdd}) {
    const double t = m.exec_time_mean(k, n, p);
    EXPECT_GT(t, 0.0);
    EXPECT_TRUE(std::isfinite(t));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExecDomain,
    ::testing::Combine(::testing::Values(1000, 2000, 3000),
                       ::testing::Values(1, 2, 7, 8, 15, 16, 17, 31, 32)));

}  // namespace
