#include "mtsched/core/rng.hpp"

#include <cmath>

#include "mtsched/core/error.hpp"

namespace mtsched::core {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MTSCHED_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  MTSCHED_REQUIRE(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Unbiased rejection sampling (Lemire-style threshold).
  const std::uint64_t threshold = (0 - span) % span;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % span);
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  MTSCHED_REQUIRE(stddev >= 0.0, "stddev must be non-negative");
  return mean + stddev * normal();
}

double Rng::lognormal_unit(double sigma) {
  MTSCHED_REQUIRE(sigma >= 0.0, "sigma must be non-negative");
  // exp(N(-sigma^2/2, sigma)) has expectation exactly 1.
  return std::exp(normal(-0.5 * sigma * sigma, sigma));
}

Rng Rng::split(std::uint64_t stream) const {
  // Mix the current state with the stream id; independent of generator use.
  return Rng(hash_mix(s_[0] ^ s_[3], stream, 0xA0761D6478BD642Full));
}

std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  SplitMix64 sm(a ^ rotl(b, 23) ^ rotl(c, 47));
  std::uint64_t h = sm.next();
  h ^= sm.next() + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

double unit_hash(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return static_cast<double>(hash_mix(a, b + 0x2545F4914F6CDD1Dull, c + 1) >> 11) *
         0x1.0p-53;
}

}  // namespace mtsched::core
