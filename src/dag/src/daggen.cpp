#include "mtsched/dag/daggen.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "mtsched/core/error.hpp"
#include "mtsched/core/rng.hpp"

namespace mtsched::dag {

std::string DaggenParams::id() const {
  std::ostringstream os;
  os << "daggen_t" << num_tasks << "_f" << fat << "_r" << regularity << "_d"
     << density << "_j" << jump << "_n" << matrix_dim << "_s" << seed;
  return os.str();
}

Dag generate_daggen(const DaggenParams& params) {
  MTSCHED_REQUIRE(params.num_tasks >= 1, "num_tasks must be >= 1");
  MTSCHED_REQUIRE(params.fat > 0.0 && params.fat <= 1.0,
                  "fat must be in (0, 1]");
  MTSCHED_REQUIRE(params.regularity >= 0.0 && params.regularity <= 1.0,
                  "regularity must be in [0, 1]");
  MTSCHED_REQUIRE(params.density > 0.0 && params.density <= 1.0,
                  "density must be in (0, 1]");
  MTSCHED_REQUIRE(params.jump >= 1, "jump must be >= 1");
  MTSCHED_REQUIRE(params.add_ratio >= 0.0 && params.add_ratio <= 1.0,
                  "add_ratio must be in [0, 1]");
  MTSCHED_REQUIRE(params.matrix_dim > 0, "matrix_dim must be positive");

  core::Rng rng(params.seed);

  // Kernel mix, exact like the Table I generator.
  const int n_add = static_cast<int>(
      std::lround(params.add_ratio * static_cast<double>(params.num_tasks)));
  std::vector<TaskKernel> kernels(static_cast<std::size_t>(params.num_tasks),
                                  TaskKernel::MatMul);
  std::fill_n(kernels.begin(), n_add, TaskKernel::MatAdd);
  rng.shuffle(kernels);

  // Layer widths: target fat * sqrt(n) * 2, modulated by regularity.
  const double target_width = std::max(
      1.0, 2.0 * params.fat * std::sqrt(static_cast<double>(params.num_tasks)));
  std::vector<int> layer_sizes;
  int produced = 0;
  while (produced < params.num_tasks) {
    // regularity 1 -> exactly the target; 0 -> uniform in [1, 2*target].
    const double spread = (1.0 - params.regularity) * target_width;
    const double w = target_width + rng.uniform(-spread, spread);
    int size = std::max(1, static_cast<int>(std::lround(w)));
    size = std::min(size, params.num_tasks - produced);
    layer_sizes.push_back(size);
    produced += size;
  }

  Dag g;
  std::vector<std::vector<TaskId>> layers;
  int next_kernel = 0;
  for (int size : layer_sizes) {
    std::vector<TaskId> layer;
    for (int i = 0; i < size; ++i) {
      layer.push_back(g.add_task(
          kernels[static_cast<std::size_t>(next_kernel++)],
          params.matrix_dim));
    }
    layers.push_back(std::move(layer));
  }

  // Edges: for each task below the first layer, candidate parents live in
  // the up-to-`jump` preceding layers; each candidate connects with
  // probability `density`, capped at 2 inbound edges (binary kernels),
  // with at least one inbound edge guaranteed.
  std::vector<int> indeg(g.num_tasks(), 0);
  for (std::size_t li = 1; li < layers.size(); ++li) {
    // Gather candidate parents.
    std::vector<TaskId> candidates;
    const std::size_t first =
        li >= static_cast<std::size_t>(params.jump) ? li - params.jump : 0;
    for (std::size_t pl = first; pl < li; ++pl) {
      candidates.insert(candidates.end(), layers[pl].begin(),
                        layers[pl].end());
    }
    for (TaskId t : layers[li]) {
      std::vector<TaskId> shuffled = candidates;
      rng.shuffle(shuffled);
      for (TaskId parent : shuffled) {
        if (indeg[t] >= 2) break;
        if (rng.uniform() < params.density) {
          g.add_edge(parent, t);
          ++indeg[t];
        }
      }
      if (indeg[t] == 0) {
        // Guarantee connectivity: link to a random previous-layer task.
        const auto& prev = layers[li - 1];
        const TaskId parent = prev[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(prev.size()) - 1))];
        g.add_edge(parent, t);
        ++indeg[t];
      }
    }
  }

  g.validate();
  return g;
}

}  // namespace mtsched::dag
