// Tests for the profiling campaign and the regression builder, including
// the paper's Figure 6 outlier story (naive powers-of-two sampling fits
// worse than the outlier-avoiding plan).
#include <gtest/gtest.h>

#include <cmath>

#include "mtsched/core/error.hpp"
#include "mtsched/machine/java_cluster.hpp"
#include "mtsched/profiling/profiler.hpp"
#include "mtsched/profiling/regression_builder.hpp"
#include "mtsched/tgrid/emulator.hpp"

namespace {

using namespace mtsched;
using dag::TaskKernel;

struct Rig {
  machine::JavaClusterModel machine;
  tgrid::TGridEmulator emulator;
  profiling::Profiler profiler;

  Rig() : machine(), emulator(machine, machine.platform_spec()),
          profiler(emulator) {}
};

profiling::ProfileConfig fast_config() {
  profiling::ProfileConfig cfg;
  cfg.exec_trials = 3;
  cfg.startup_trials = 5;
  cfg.redist_trials = 2;
  return cfg;
}

TEST(Profiler, ExecProfileTracksMachineMeans) {
  Rig rig;
  const std::vector<int> ps{1, 4, 8, 16, 32};
  const auto prof =
      rig.profiler.exec_profile(TaskKernel::MatMul, 2000, ps, 20, 1);
  ASSERT_EQ(prof.size(), ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const double mean =
        rig.machine.exec_time_mean(TaskKernel::MatMul, 2000, ps[i]);
    EXPECT_NEAR(prof[i], mean, mean * 0.05) << "p=" << ps[i];
  }
}

TEST(Profiler, StartupProfileTracksMachine) {
  Rig rig;
  const auto prof = rig.profiler.startup_profile({1, 16, 32}, 20, 1);
  EXPECT_NEAR(prof[0], rig.machine.startup_mean(1),
              rig.machine.startup_mean(1) * 0.05);
  EXPECT_NEAR(prof[2], rig.machine.startup_mean(32),
              rig.machine.startup_mean(32) * 0.05);
}

TEST(Profiler, RedistSurfaceShapeAndCollapse) {
  Rig rig;
  const auto surface = rig.profiler.redist_surface(2, 1);
  EXPECT_EQ(surface.rows(), 32u);
  EXPECT_EQ(surface.cols(), 32u);
  const auto by_dst = profiling::Profiler::average_over_src(surface);
  ASSERT_EQ(by_dst.size(), 32u);
  // Overhead grows with destination count (Figure 4's dominant axis).
  EXPECT_GT(by_dst[31], by_dst[0]);
  // Hand-check the collapse of column 5.
  double sum = 0.0;
  for (std::size_t s = 0; s < 32; ++s) sum += surface(s, 5);
  EXPECT_NEAR(by_dst[5], sum / 32.0, 1e-12);
}

TEST(Profiler, BruteForceTablesAreComplete) {
  Rig rig;
  const auto tables = rig.profiler.brute_force(fast_config());
  EXPECT_EQ(tables.exec.size(), 4u);  // 2 kernels x 2 dims
  for (const auto& [key, times] : tables.exec) {
    EXPECT_EQ(times.size(), 32u);
    for (double t : times) EXPECT_GT(t, 0.0);
  }
  EXPECT_EQ(tables.startup.size(), 32u);
  EXPECT_EQ(tables.redist_by_dst.size(), 32u);
}

TEST(Profiler, DeterministicGivenSeed) {
  Rig rig;
  const auto a = rig.profiler.exec_profile(TaskKernel::MatAdd, 3000,
                                           {2, 4, 8}, 3, 77);
  const auto b = rig.profiler.exec_profile(TaskKernel::MatAdd, 3000,
                                           {2, 4, 8}, 3, 77);
  EXPECT_EQ(a, b);
  const auto c = rig.profiler.exec_profile(TaskKernel::MatAdd, 3000,
                                           {2, 4, 8}, 3, 78);
  EXPECT_NE(a, c);
}

TEST(Profiler, Validation) {
  Rig rig;
  EXPECT_THROW(rig.profiler.exec_profile(TaskKernel::MatMul, 2000, {}, 3, 1),
               core::InvalidArgument);
  EXPECT_THROW(rig.profiler.exec_profile(TaskKernel::MatMul, 2000, {1}, 0, 1),
               core::InvalidArgument);
  EXPECT_THROW(rig.profiler.startup_profile({1}, 0, 1),
               core::InvalidArgument);
  EXPECT_THROW(rig.profiler.redist_surface(0, 1), core::InvalidArgument);
  profiling::ProfileConfig empty;
  empty.matrix_dims.clear();
  EXPECT_THROW(rig.profiler.brute_force(empty), core::InvalidArgument);
}

TEST(SamplePlans, MatchThePaper) {
  const auto robust = profiling::SamplePlan::robust();
  EXPECT_EQ(robust.mm_small_p, (std::vector<int>{2, 4, 7, 15}));
  EXPECT_EQ(robust.mm_large_p, (std::vector<int>{15, 24, 31}));
  EXPECT_EQ(robust.add_p, (std::vector<int>{2, 4, 7, 15, 24, 31}));
  EXPECT_EQ(robust.overhead_p, (std::vector<int>{1, 16, 32}));
  const auto naive = profiling::SamplePlan::naive();
  // The naive plan hits the outliers at 8 and 16.
  EXPECT_NE(std::find(naive.mm_small_p.begin(), naive.mm_small_p.end(), 8),
            naive.mm_small_p.end());
  EXPECT_NE(std::find(naive.mm_small_p.begin(), naive.mm_small_p.end(), 16),
            naive.mm_small_p.end());
}

TEST(RegressionBuilder, ProducesFitsForAllKernelsAndDims) {
  Rig rig;
  const profiling::RegressionBuilder builder(rig.profiler);
  const auto build = builder.build(fast_config(),
                                   profiling::SamplePlan::robust());
  EXPECT_EQ(build.fits.exec.size(), 4u);
  EXPECT_TRUE(build.fits.exec.at({TaskKernel::MatMul, 2000}).has_large);
  EXPECT_FALSE(build.fits.exec.at({TaskKernel::MatAdd, 2000}).has_large);
  // Startup fit in the Table II ballpark (a ~ 0.03-0.06, b ~ 0.5-0.9).
  EXPECT_GT(build.fits.startup.a, 0.0);
  EXPECT_GT(build.fits.startup.b, 0.3);
  // Redistribution fit: positive slope in p_dst.
  EXPECT_GT(build.fits.redist.a, 0.0);
}

TEST(RegressionBuilder, RobustPlanBeatsNaiveOnOutlierCurve) {
  // Figure 6: for n = 3000 the outliers at p = 8 and 16 ruin the naive
  // fit; evaluate both fits against the true mean curve away from the
  // outliers themselves.
  Rig rig;
  const profiling::RegressionBuilder builder(rig.profiler);
  const auto cfg = fast_config();
  const auto robust = builder.build(cfg, profiling::SamplePlan::robust());
  const auto naive = builder.build(cfg, profiling::SamplePlan::naive());
  auto rmse = [&](const stats::PiecewiseFit& fit) {
    double ss = 0.0;
    int count = 0;
    for (int p = 2; p <= 32; ++p) {
      if (p == 8 || p == 16) continue;  // judge on the regular points
      const double truth =
          rig.machine.exec_time_mean(TaskKernel::MatMul, 3000, p);
      const double pred = fit.eval(p);
      ss += (pred - truth) * (pred - truth);
      ++count;
    }
    return std::sqrt(ss / count);
  };
  const double r = rmse(robust.fits.exec.at({TaskKernel::MatMul, 3000}));
  const double n = rmse(naive.fits.exec.at({TaskKernel::MatMul, 3000}));
  EXPECT_LT(r, n);
}

TEST(RegressionBuilder, FitDataRecordedForPlotting) {
  Rig rig;
  const profiling::RegressionBuilder builder(rig.profiler);
  const auto build = builder.build(fast_config(),
                                   profiling::SamplePlan::robust());
  const auto& data = build.exec_data.at({TaskKernel::MatMul, 2000});
  EXPECT_EQ(data.p.size(), 7u);  // 4 small + 3 large
  EXPECT_EQ(data.seconds.size(), 7u);
  EXPECT_EQ(build.startup_data.p.size(), 3u);
  EXPECT_EQ(build.redist_data.p.size(), 3u);
}

TEST(RegressionBuilder, RejectsDegeneratePlans) {
  Rig rig;
  const profiling::RegressionBuilder builder(rig.profiler);
  auto plan = profiling::SamplePlan::robust();
  plan.mm_small_p = {4};
  EXPECT_THROW(builder.build(fast_config(), plan), core::InvalidArgument);
}

TEST(SamplePlans, ScaledPlansFitSmallerClusters) {
  const auto plan16 = profiling::SamplePlan::scaled(16);
  for (int p : plan16.mm_small_p) EXPECT_LE(p, 16);
  for (int p : plan16.mm_large_p) EXPECT_LE(p, 16);
  EXPECT_EQ(plan16.split, 8);
  EXPECT_EQ(plan16.overhead_p.back(), 16);
  // 32 nodes reproduces the paper plan exactly.
  const auto plan32 = profiling::SamplePlan::scaled(32);
  EXPECT_EQ(plan32.mm_small_p, profiling::SamplePlan::robust().mm_small_p);
  EXPECT_THROW(profiling::SamplePlan::scaled(3), core::InvalidArgument);
}

TEST(RegressionBuilder, TheilSenIsNoWorseOnDenseSamples) {
  // The paper's future-work challenge: calibrate from sparse profiles
  // without hand-picking outlier-free points. On synthetic data with
  // isolated outliers Theil-Sen wins outright (see the stats tests); on
  // this machine's measured curves the lumpy efficiency ripple dominates
  // the isolated p = 8/16 outliers once sampling is dense, so the honest
  // expectation is non-inferiority: robust fitting must not cost accuracy
  // (and it removes the need to hand-pick points).
  Rig rig;
  const profiling::RegressionBuilder builder(rig.profiler);
  const auto cfg = fast_config();
  profiling::SamplePlan dense;
  dense.mm_small_p = {2, 3, 4, 5, 6, 8, 10, 12, 14, 16};
  dense.mm_large_p = {16, 20, 24, 28, 32};
  dense.add_p = {2, 4, 8, 16, 32};
  dense.overhead_p = {1, 16, 32};
  auto dense_ts = dense;
  dense_ts.method = profiling::FitMethod::TheilSen;
  const auto ls = builder.build(cfg, dense);
  const auto ts = builder.build(cfg, dense_ts);
  auto rmse = [&](const stats::PiecewiseFit& fit) {
    double ss = 0.0;
    int count = 0;
    for (int p = 2; p <= 32; ++p) {
      if (p == 8 || p == 16) continue;
      const double truth =
          rig.machine.exec_time_mean(TaskKernel::MatMul, 3000, p);
      const double pred = fit.eval(p);
      ss += (pred - truth) * (pred - truth);
      ++count;
    }
    return std::sqrt(ss / count);
  };
  const double r_ts = rmse(ts.fits.exec.at({TaskKernel::MatMul, 3000}));
  const double r_ls = rmse(ls.fits.exec.at({TaskKernel::MatMul, 3000}));
  EXPECT_LT(r_ts, r_ls * 1.25);
}

}  // namespace
