file(REMOVE_RECURSE
  "CMakeFiles/dag_apps_test.dir/dag_apps_test.cpp.o"
  "CMakeFiles/dag_apps_test.dir/dag_apps_test.cpp.o.d"
  "dag_apps_test"
  "dag_apps_test.pdb"
  "dag_apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
