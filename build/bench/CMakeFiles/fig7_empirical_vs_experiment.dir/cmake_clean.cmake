file(REMOVE_RECURSE
  "CMakeFiles/fig7_empirical_vs_experiment.dir/fig7_empirical_vs_experiment.cpp.o"
  "CMakeFiles/fig7_empirical_vs_experiment.dir/fig7_empirical_vs_experiment.cpp.o.d"
  "fig7_empirical_vs_experiment"
  "fig7_empirical_vs_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_empirical_vs_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
