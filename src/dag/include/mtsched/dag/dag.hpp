// Mixed-parallel application model (paper Section II).
//
// An application is a DAG of *moldable* data-parallel tasks: each task can
// run on any number of processors p within [1, P]. In the case study the
// tasks are dense matrix additions and multiplications on n-by-n matrices
// with a vanilla 1-D column-block distribution; an edge t -> u means u
// consumes the n-by-n matrix produced by t, which generally requires a data
// redistribution between the (different) processor sets of t and u.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mtsched/core/units.hpp"

namespace mtsched::dag {

using TaskId = std::uint32_t;
inline constexpr TaskId kInvalidTask = static_cast<TaskId>(-1);

/// Computational kernel executed by a task.
enum class TaskKernel {
  MatMul,  ///< C = A * B, 2 n^3 flops sequentially
  MatAdd,  ///< C = A + B, repeated n/4 times per paper Section IV-1
};

const char* kernel_name(TaskKernel k);

/// Number of distinct TaskKernel values (for dense per-kernel tables).
inline constexpr std::size_t kNumKernels = 2;

/// Sequential flop count of a kernel on n-by-n matrices, including the
/// paper's n/4 repetition factor for additions (Section IV-1).
double kernel_flops(TaskKernel k, int n);

/// One moldable task.
struct Task {
  TaskId id = kInvalidTask;
  TaskKernel kernel = TaskKernel::MatMul;
  int matrix_dim = 0;  ///< n: operates on and produces n-by-n matrices
  std::string name;
};

/// A data-dependency edge: `dst` consumes the matrix produced by `src`.
struct Edge {
  TaskId src = kInvalidTask;
  TaskId dst = kInvalidTask;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Immutable-after-build task graph with adjacency in both directions.
///
/// Derived topology (topological order, precedence levels, level count) is
/// computed once on first use and cached; add_task()/add_edge() invalidate
/// the cache. First-use computation is thread-safe — concurrent schedulers
/// may share one const Dag — but mutation must not race with readers (the
/// same contract the cache-free implementation had).
class Dag {
 public:
  Dag() = default;
  Dag(const Dag& other);
  Dag(Dag&& other) noexcept;
  Dag& operator=(const Dag& other);
  Dag& operator=(Dag&& other) noexcept;

  /// Adds a task with the given kernel and matrix dimension; returns its id.
  TaskId add_task(TaskKernel kernel, int matrix_dim, std::string name = {});

  /// Adds the dependency edge src -> dst. Rejects self-loops, unknown ids
  /// and duplicate edges. Cycles are rejected lazily by validate().
  void add_edge(TaskId src, TaskId dst);

  std::size_t num_tasks() const { return tasks_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  const Task& task(TaskId id) const;
  const std::vector<Task>& tasks() const { return tasks_; }
  const std::vector<Edge>& edges() const { return edges_; }

  const std::vector<TaskId>& predecessors(TaskId id) const;
  const std::vector<TaskId>& successors(TaskId id) const;

  /// Tasks with no predecessors / no successors.
  std::vector<TaskId> entry_tasks() const;
  std::vector<TaskId> exit_tasks() const;

  /// Topological order (Kahn). Throws core::InvalidArgument on cycles.
  /// The reference stays valid until the next add_task()/add_edge().
  const std::vector<TaskId>& topological_order() const;

  /// Flat CSR view over the adjacency plus the topological positions,
  /// cached together with the topological order. Edge targets appear in
  /// the same per-task order as predecessors()/successors(), so
  /// reductions over them see identical operands in identical order.
  /// All references stay valid until the next add_task()/add_edge().
  struct TopologyView {
    const std::vector<TaskId>& order;            ///< topological order
    const std::vector<std::size_t>& positions;   ///< task -> index in order
    const std::vector<std::size_t>& pred_offsets;  ///< size num_tasks + 1
    const std::vector<TaskId>& preds;            ///< flat predecessor lists
    const std::vector<std::size_t>& succ_offsets;  ///< size num_tasks + 1
    const std::vector<TaskId>& succs;            ///< flat successor lists
  };
  TopologyView topology() const;

  /// Precedence level of every task: entry tasks are level 0, any other
  /// task is 1 + max level over its predecessors. Used by MCPA. The
  /// reference stays valid until the next add_task()/add_edge().
  const std::vector<int>& precedence_levels() const;

  /// Number of distinct precedence levels.
  int num_levels() const;

  /// Throws if the graph has a cycle; no-op otherwise.
  void validate() const;

  /// Bytes carried by an edge: the full n-by-n double matrix of `src`.
  double edge_bytes(const Edge& e) const;

 private:
  /// Lazily computed derived topology, shared between Dag copies (it only
  /// depends on the immutable structure it was computed from).
  struct TopoCache {
    std::vector<TaskId> order;
    std::vector<std::size_t> positions;
    std::vector<std::size_t> pred_off, succ_off;
    std::vector<TaskId> pred_flat, succ_flat;
    std::vector<int> levels;
    int num_levels = 0;
  };

  const TopoCache& topo() const;

  std::vector<Task> tasks_;
  std::vector<Edge> edges_;
  std::vector<std::vector<TaskId>> preds_;
  std::vector<std::vector<TaskId>> succs_;

  mutable std::mutex topo_mu_;
  mutable std::shared_ptr<const TopoCache> topo_cache_;
};

}  // namespace mtsched::dag
