// Hierarchical network platforms: the paper's HCPA-vs-MCPA case study
// re-run on rack topologies (extension; ROADMAP "Hierarchical network
// platforms").
//
// The full Table I suite is scheduled and executed on platforms built
// from identical node hardware but increasingly constricted networks:
//   flat        - bayreuth32, the paper's 32-node star
//   hier2x16    - 2 racks x 16 nodes, non-oversubscribed uplinks
//   hier4x8     - 4 racks x 8 nodes, 4:1 oversubscribed uplinks
//   hier4x8x16  - the same racks at 16:1
//   hier4x8x64  - and at 64:1
// Cross-rack redistributions contend on the rack uplinks (and the core),
// so redistribution costs — and with them the HCPA-vs-MCPA verdict —
// depend on the network: the 16:1 platform must change the winner on at
// least one DAG relative to the flat star, or this bench fails. A second
// table shows what the rack-locality-aware mapper buys on the most
// oversubscribed fabric against the placement-blind strategies.
//
// The BENCH_hier_virtual_cluster.json report carries "hier_map/*"
// throughput rows (list mapping on the 4-rack platform, per strategy)
// gated in CI by check_baseline.py against the committed baseline.
#include <chrono>

#include "bench_util.hpp"
#include "mtsched/core/table.hpp"
#include "mtsched/machine/java_cluster.hpp"
#include "mtsched/models/analytical.hpp"
#include "mtsched/platform/topology.hpp"
#include "mtsched/sched/allocation.hpp"
#include "mtsched/sched/mapping.hpp"
#include "mtsched/stats/summary.hpp"
#include "mtsched/tgrid/emulator.hpp"

namespace {

using namespace mtsched;

/// HCPA vs MCPA on one platform: the standard paired campaign over the
/// sampled suite, analytical model, identical weather across platforms.
exp::CaseStudyResult run_pair(const machine::MachineModel& machine_model,
                              const platform::ClusterSpec& spec,
                              const exp::SuiteSpec& sampled) {
  const tgrid::TGridEmulator rig(machine_model, spec);
  const models::AnalyticalModel model(spec);
  exp::CampaignSpec cspec;
  cspec.suites = {sampled};
  cspec.models = {{"analytical", &model}};
  cspec.exp_seeds = {bench::kExpSeed};
  cspec.threads = bench::bench_threads();
  cspec.algorithms = {
      exp::AlgoSpec::allocator("HCPA", sched::MappingStrategy::EarliestStart,
                               spec),
      exp::AlgoSpec::allocator("MCPA", sched::MappingStrategy::EarliestStart,
                               spec)};
  const auto result = exp::Campaign(rig).run(cspec);
  std::cerr << result.metrics.describe();
  if (bench::Reporter* r = bench::Reporter::current()) {
    r->note_campaign(result.metrics);
  }
  return result.case_study("analytical", "HCPA", "MCPA", bench::kSuiteSeed,
                           bench::kExpSeed);
}

}  // namespace

int main() {
  bench::Reporter report("hier_virtual_cluster");
  bench::banner("Hierarchical networks — HCPA vs MCPA across rack fabrics",
                "extension; racks/ToR/core on the paper's Section III "
                "cluster");

  const machine::JavaClusterModel machine_model;  // 32 reference nodes

  // The full 54-DAG Table I suite: verdict changes live in the DAGs where
  // HCPA and MCPA are nearly tied, and sampling would miss most of them.
  exp::SuiteSpec sampled;
  sampled.seed = bench::kSuiteSeed;
  sampled.dags = dag::generate_table1_suite();

  struct PlatformCase {
    std::string label;
    platform::ClusterSpec spec;
  };
  const std::vector<PlatformCase> platforms = {
      {"flat", platform::bayreuth32()},
      {"hier2x16", *platform::named_platform("hier2x16")},
      {"hier4x8", *platform::named_platform("hier4x8")},
      {"hier4x8x16", platform::to_cluster(
                         platform::hierarchical_topology(4, 8, 16.0))},
      {"hier4x8x64", platform::to_cluster(
                         platform::hierarchical_topology(4, 8, 64.0))},
  };

  // --- Table 1: the verdict across network fabrics -----------------------
  core::TextTable t;
  t.set_header({"platform", "HCPA mean [s]", "MCPA mean [s]", "MCPA wins",
                "verdicts changed vs flat"});
  std::vector<bool> flat_verdicts;  // per-DAG "MCPA wins" on the star
  int changed_on_oversubscribed = -1;
  for (const auto& pc : platforms) {
    const auto cs = run_pair(machine_model, pc.spec, sampled);
    std::vector<double> hcpa_mk, mcpa_mk;
    std::vector<bool> verdicts;
    int mcpa_wins = 0;
    for (const auto& o : cs.outcomes) {
      hcpa_mk.push_back(o.first.makespan_exp);
      mcpa_mk.push_back(o.second.makespan_exp);
      const bool mcpa_win = o.second.makespan_exp < o.first.makespan_exp;
      verdicts.push_back(mcpa_win);
      if (mcpa_win) ++mcpa_wins;
    }
    int changed = 0;
    if (flat_verdicts.empty()) {
      flat_verdicts = verdicts;
    } else {
      for (std::size_t i = 0; i < verdicts.size(); ++i) {
        if (verdicts[i] != flat_verdicts[i]) ++changed;
      }
    }
    if (pc.label == "hier4x8x16") changed_on_oversubscribed = changed;
    report.set("makespan_exp.hcpa_mean." + pc.label, stats::mean(hcpa_mk));
    report.set("makespan_exp.mcpa_mean." + pc.label, stats::mean(mcpa_mk));
    report.set("verdict_changes_vs_flat." + pc.label,
               static_cast<double>(changed));
    t.add_row({pc.label, core::fmt(stats::mean(hcpa_mk), 1),
               core::fmt(stats::mean(mcpa_mk), 1),
               std::to_string(mcpa_wins) + "/" +
                   std::to_string(verdicts.size()),
               pc.label == "flat" ? "-" : std::to_string(changed)});
  }
  std::cout << t.render() << '\n';

  // --- Table 2: mapping strategies on the oversubscribed fabric ----------
  const auto& spec4 = platforms.back().spec;
  {
    const tgrid::TGridEmulator rig(machine_model, spec4);
    const models::AnalyticalModel model(spec4);
    exp::CampaignSpec cspec;
    cspec.suites = {sampled};
    cspec.models = {{"analytical", &model}};
    cspec.exp_seeds = {bench::kExpSeed};
    cspec.threads = bench::bench_threads();
    for (const auto strategy : {sched::MappingStrategy::EarliestStart,
                                sched::MappingStrategy::RedistributionAware,
                                sched::MappingStrategy::RackAware}) {
      auto algo = exp::AlgoSpec::allocator(
          "HCPA", strategy, spec4,
          std::string("HCPA/") + sched::mapping_name(strategy));
      algo.seed_slot = 0;  // identical weather: only the mapping varies
      cspec.algorithms.push_back(std::move(algo));
    }
    const auto result = exp::Campaign(rig).run(cspec);
    std::cerr << result.metrics.describe();
    report.note_campaign(result.metrics);

    core::TextTable t2;
    t2.set_header({"mapping (" + platforms.back().label + ")",
                   "mean makespan [s]", "wins vs earliest"});
    bool base_row_written = false;
    for (const char* label : {"HCPA/redist_aware", "HCPA/rack_aware"}) {
      const auto cs = result.case_study("analytical", "HCPA/earliest", label,
                                        bench::kSuiteSeed, bench::kExpSeed);
      std::vector<double> mk;
      int wins = 0;
      if (!base_row_written) {
        std::vector<double> base_mk;
        for (const auto& o : cs.outcomes) {
          base_mk.push_back(o.first.makespan_exp);
        }
        t2.add_row({"earliest", core::fmt(stats::mean(base_mk), 1), "-"});
        report.set("makespan_exp.mean.HCPA/earliest", stats::mean(base_mk));
        base_row_written = true;
      }
      for (const auto& o : cs.outcomes) {
        mk.push_back(o.second.makespan_exp);
        if (o.second.makespan_exp < o.first.makespan_exp) ++wins;
      }
      report.set(std::string("makespan_exp.mean.") + label, stats::mean(mk));
      t2.add_row({label + 5, core::fmt(stats::mean(mk), 1),
                  std::to_string(wins) + "/" + std::to_string(mk.size())});
    }
    std::cout << t2.render() << '\n';
  }

  // --- hier_map/* throughput rows (CI baseline gate) ---------------------
  {
    dag::DagGenParams p;
    p.num_tasks = 400;
    p.width = 6;
    p.add_ratio = 0.4;
    p.matrix_dim = 2000;
    p.seed = 13;
    const auto inst = dag::generate_random_dag(p);
    const models::AnalyticalModel model(spec4);
    const models::SchedCostAdapter cost(model);
    const auto alloc =
        sched::HcpaAllocator{}.allocate(inst.graph, cost, spec4.num_nodes);
    for (const auto strategy : {sched::MappingStrategy::EarliestStart,
                                sched::MappingStrategy::RedistributionAware,
                                sched::MappingStrategy::RackAware}) {
      const sched::ListMapper mapper(strategy, spec4);
      (void)mapper.map(inst.graph, alloc, cost, spec4.num_nodes);  // warm-up
      using Clock = std::chrono::steady_clock;
      const auto t0 = Clock::now();
      int iters = 0;
      double seconds = 0.0;
      do {
        (void)mapper.map(inst.graph, alloc, cost, spec4.num_nodes);
        ++iters;
        seconds = std::chrono::duration<double>(Clock::now() - t0).count();
      } while (seconds < 0.2 || iters < 10);
      report.add_throughput(
          {std::string("hier_map/") + sched::mapping_name(strategy),
           seconds / iters, p.num_tasks * iters / seconds});
    }
  }

  std::cout << "Uplink contention raises every makespan on the rack "
               "fabrics; from 16:1\noversubscription on it also moves the "
               "HCPA-vs-MCPA frontier (verdicts\nchange vs the flat star) "
               "and rack-aware mapping claws back part of the\ncross-rack "
               "redistribution cost.\n";

  if (changed_on_oversubscribed < 1) {
    std::cerr << "FAIL: expected >= 1 HCPA-vs-MCPA verdict change between "
                 "the flat star and hier4x8x16, got "
              << changed_on_oversubscribed << '\n';
    return 1;
  }
  return 0;
}
