file(REMOVE_RECURSE
  "CMakeFiles/gantt_trace.dir/gantt_trace.cpp.o"
  "CMakeFiles/gantt_trace.dir/gantt_trace.cpp.o.d"
  "gantt_trace"
  "gantt_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gantt_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
