file(REMOVE_RECURSE
  "CMakeFiles/mtsched_core.dir/src/log.cpp.o"
  "CMakeFiles/mtsched_core.dir/src/log.cpp.o.d"
  "CMakeFiles/mtsched_core.dir/src/rng.cpp.o"
  "CMakeFiles/mtsched_core.dir/src/rng.cpp.o.d"
  "CMakeFiles/mtsched_core.dir/src/table.cpp.o"
  "CMakeFiles/mtsched_core.dir/src/table.cpp.o.d"
  "libmtsched_core.a"
  "libmtsched_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtsched_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
