#include "mtsched/exp/lab.hpp"

#include "mtsched/core/error.hpp"

namespace mtsched::exp {

Lab::Lab(LabConfig cfg) {
  auto java = std::make_unique<machine::JavaClusterModel>(cfg.machine);
  spec_ = java->platform_spec();
  machine_ = std::move(java);
  wire(cfg);
}

Lab::Lab(std::unique_ptr<machine::MachineModel> machine_model,
         platform::ClusterSpec spec, LabConfig cfg)
    : machine_(std::move(machine_model)), spec_(std::move(spec)) {
  MTSCHED_REQUIRE(machine_ != nullptr, "machine model must not be null");
  wire(cfg);
}

void Lab::wire(const LabConfig& cfg) {
  rig_ = std::make_unique<tgrid::TGridEmulator>(*machine_, spec_);
  profiler_ = std::make_unique<profiling::Profiler>(*rig_);

  // The paper's three simulator versions, built through the factory:
  // Section VI's brute-force measurement campaign feeds the profile
  // model, Section VII's sparse measurements + regressions the empirical
  // one. The analytical model needs the platform spec only.
  const auto tables = profiler_->brute_force(cfg.profiling);
  const profiling::RegressionBuilder builder(*profiler_);
  empirical_build_ = builder.build(cfg.profiling, cfg.sample_plan);

  models::ModelSpec model_spec;
  model_spec.platform = spec_;
  model_spec.profile = &tables;
  model_spec.empirical = &empirical_build_.fits;
  for (const auto kind : models::all_kinds()) {
    model_spec.kind = kind;
    models_.at(static_cast<std::size_t>(kind)) =
        models::make_cost_model(model_spec);
  }
}

const models::CostModel& Lab::model(const models::ModelSpec& spec) const {
  return model(spec.kind);
}

const models::CostModel& Lab::model(models::CostModelKind kind) const {
  const auto idx = static_cast<std::size_t>(kind);
  MTSCHED_REQUIRE(idx < models_.size() && models_[idx] != nullptr,
                  "unknown cost model kind");
  return *models_[idx];
}

}  // namespace mtsched::exp
