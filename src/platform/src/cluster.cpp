#include "mtsched/platform/cluster.hpp"

#include <algorithm>

#include "mtsched/core/error.hpp"
#include "mtsched/core/rng.hpp"
#include "mtsched/core/units.hpp"
#include "mtsched/platform/topology.hpp"

namespace mtsched::platform {

bool ClusterSpec::hierarchical() const {
  return topology != nullptr && !topology->reduces_to_star();
}

double ClusterSpec::route_latency(int a, int b) const {
  if (topology != nullptr) return topology->route_latency(a, b);
  return a == b ? 0.0 : route_latency();
}

double ClusterSpec::max_route_latency() const {
  if (topology != nullptr) return topology->max_route_latency();
  return route_latency();
}

double ClusterSpec::flops_of(int node_id) const {
  MTSCHED_REQUIRE(node_id >= 0 && node_id < num_nodes, "node out of range");
  if (node_speeds.empty()) return node.flops;
  return node_speeds[static_cast<std::size_t>(node_id)];
}

double ClusterSpec::total_flops() const {
  if (node_speeds.empty()) return node.flops * num_nodes;
  double sum = 0.0;
  for (double s : node_speeds) sum += s;
  return sum;
}

double ClusterSpec::min_flops() const {
  if (node_speeds.empty()) return node.flops;
  return *std::min_element(node_speeds.begin(), node_speeds.end());
}

double ClusterSpec::max_flops() const {
  if (node_speeds.empty()) return node.flops;
  return *std::max_element(node_speeds.begin(), node_speeds.end());
}

void ClusterSpec::validate() const {
  MTSCHED_REQUIRE(num_nodes >= 1, "cluster needs at least one node");
  MTSCHED_REQUIRE(node.flops > 0.0, "node speed must be positive");
  if (!node_speeds.empty()) {
    MTSCHED_REQUIRE(
        node_speeds.size() == static_cast<std::size_t>(num_nodes),
        "node_speeds must have one entry per node");
    for (double s : node_speeds) {
      MTSCHED_REQUIRE(s > 0.0, "node speeds must be positive");
    }
  }
  MTSCHED_REQUIRE(net.link_bandwidth > 0.0, "link bandwidth must be positive");
  MTSCHED_REQUIRE(net.link_latency >= 0.0, "link latency must be >= 0");
  MTSCHED_REQUIRE(net.backbone_bandwidth > 0.0,
                  "backbone bandwidth must be positive");
  MTSCHED_REQUIRE(net.backbone_latency >= 0.0, "backbone latency must be >= 0");
  if (topology != nullptr) {
    topology->validate();
    MTSCHED_REQUIRE(topology->num_nodes() == num_nodes,
                    "attached topology node count must match num_nodes");
  }
}

ClusterSpec bayreuth32() {
  ClusterSpec c;
  c.name = "bayreuth32";
  c.num_nodes = 32;
  c.node.flops = 250e6;  // Java matrix-multiply calibration (paper IV)
  c.net.link_bandwidth = core::bps_to_Bps(1e9);  // 1 Gb/s
  c.net.link_latency = core::usec(100.0);
  // GigE switch fabric: ample but finite aggregate capacity.
  c.net.backbone_bandwidth = 16.0 * core::bps_to_Bps(1e9);
  c.net.backbone_latency = 0.0;
  c.net.shared_backbone = true;
  c.validate();
  return c;
}

ClusterSpec cray_xt4(int num_nodes) {
  ClusterSpec c;
  c.name = "cray_xt4";
  c.num_nodes = num_nodes;
  c.node.flops = 4165.3e6;  // PDGEMM flop rate measured on Franklin (paper VI-A)
  c.net.link_bandwidth = 6.4e9;  // SeaStar2 injection bandwidth, bytes/s
  c.net.link_latency = core::usec(8.0);
  c.net.backbone_bandwidth = 1e12;
  c.net.backbone_latency = 0.0;
  c.net.shared_backbone = false;
  c.validate();
  return c;
}

double exec_slowdown(const ClusterSpec& spec, const std::vector<int>& nodes) {
  MTSCHED_REQUIRE(!nodes.empty(), "node set must be non-empty");
  if (!spec.heterogeneous()) return 1.0;
  double s_min = spec.flops_of(nodes.front());
  for (int n : nodes) s_min = std::min(s_min, spec.flops_of(n));
  return spec.node.flops / s_min;
}

ClusterSpec heterogeneous_cluster(int num_nodes, double min_flops,
                                  double max_flops, std::uint64_t seed) {
  MTSCHED_REQUIRE(num_nodes >= 1, "cluster needs at least one node");
  MTSCHED_REQUIRE(min_flops > 0.0 && min_flops <= max_flops,
                  "speed range must satisfy 0 < min <= max");
  ClusterSpec c = bayreuth32();
  c.name = "hetero" + std::to_string(num_nodes);
  c.num_nodes = num_nodes;
  core::Rng rng(seed);
  double sum = 0.0;
  for (int i = 0; i < num_nodes; ++i) {
    const double s = rng.uniform(min_flops, max_flops);
    c.node_speeds.push_back(s);
    sum += s;
  }
  c.node.flops = sum / num_nodes;  // reference speed = mean
  c.validate();
  return c;
}

}  // namespace mtsched::platform
