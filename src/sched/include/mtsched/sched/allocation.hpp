// Allocation phase of two-step mixed-parallel scheduling (paper II-A).
//
// All algorithms share the CPA skeleton (Radulescu & van Gemund 2001):
// start every task at one processor, then repeatedly give one more
// processor to the most promising critical-path task while the critical
// path length T_CP still exceeds the average area
//   T_A = (1/P) * sum_t p_t * tau(t, p_t),
// i.e. while the schedule is still critical-path-bound rather than
// work-bound. The selected task is the critical-path task with the largest
// decrease of its time-per-processor ratio
//   gain(t) = tau(t, p_t)/p_t - tau(t, p_t + 1)/(p_t + 1),
// among those whose execution time actually shrinks with one more
// processor. tau(t, p) is SchedCost::task_time (execution plus startup, so
// refined cost models automatically discourage over-allocation).
//
// The paper's point of comparison is two published remedies for CPA's
// tendency to over-allocate:
//
//   * HCPA (N'takpe, Suter, Casanova 2007): a task may only grow while it
//     still uses the extra processor efficiently; we implement the remedy
//     as a parallel-efficiency gate
//        e(t, p) = tau(t, 1) / (p * tau(t, p)) >= min_efficiency
//     for the grown allocation (default 0.8; at 0.8 the gate binds before
//     CPA's natural stopping point on this workload, so HCPA allocates
//     visibly fewer processors per task, as it does in the paper's
//     figures).
//
//   * MCPA (Bansal, Kumar, Singh 2006): allocation respects the DAG's
//     precedence levels — tasks that can run concurrently share the
//     machine, so the summed allocation within one level never exceeds P.
//
// Exact tie-breaking in the original publications is unspecified; ours is
// deterministic (smallest task id wins ties).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mtsched/dag/dag.hpp"
#include "mtsched/sched/cost.hpp"

namespace mtsched::sched {

/// Interface of the allocation phase: returns the processor count per task.
class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Computes allocations for all tasks of `g` on a cluster of P
  /// processors. Every returned value is in [1, P].
  virtual std::vector<int> allocate(const dag::Dag& g, const SchedCost& cost,
                                    int P) const = 0;

  virtual std::string name() const = 0;
};

/// The original CPA allocation.
class CpaAllocator final : public Allocator {
 public:
  std::vector<int> allocate(const dag::Dag& g, const SchedCost& cost,
                            int P) const override;
  std::string name() const override { return "CPA"; }
};

/// Heterogeneous CPA specialized to a homogeneous cluster: CPA with a
/// parallel-efficiency gate on allocation growth.
class HcpaAllocator final : public Allocator {
 public:
  explicit HcpaAllocator(double min_efficiency = 0.8);
  std::vector<int> allocate(const dag::Dag& g, const SchedCost& cost,
                            int P) const override;
  std::string name() const override { return "HCPA"; }

 private:
  double min_efficiency_;
};

/// Modified CPA: CPA with per-precedence-level allocation budgets.
class McpaAllocator final : public Allocator {
 public:
  std::vector<int> allocate(const dag::Dag& g, const SchedCost& cost,
                            int P) const override;
  std::string name() const override { return "MCPA"; }
};

/// Baseline: every task runs sequentially (pure task parallelism).
class SerialAllocator final : public Allocator {
 public:
  std::vector<int> allocate(const dag::Dag& g, const SchedCost& cost,
                            int P) const override;
  std::string name() const override { return "SEQ"; }
};

/// Baseline: every task gets the whole machine (pure data parallelism).
class MaxParAllocator final : public Allocator {
 public:
  std::vector<int> allocate(const dag::Dag& g, const SchedCost& cost,
                            int P) const override;
  std::string name() const override { return "MAXPAR"; }
};

/// Factory by name ("CPA", "HCPA", "MCPA", "SEQ", "MAXPAR").
std::unique_ptr<Allocator> make_allocator(const std::string& name);

/// Diagnostics shared with tests: critical-path length and average area for
/// a given allocation under a cost model.
struct CpaMetrics {
  double t_cp = 0.0;  ///< critical path length (computation only)
  double t_a = 0.0;   ///< average area
};
CpaMetrics cpa_metrics(const dag::Dag& g, const SchedCost& cost,
                       const std::vector<int>& alloc, int P);

}  // namespace mtsched::sched
