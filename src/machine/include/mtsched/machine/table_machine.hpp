// A machine behaviour model backed by explicit measurement tables —
// "bring your own cluster". Users who have real measurements (e.g. from
// an actual TGrid/MPI deployment) can load them from a text file and run
// the whole pipeline — emulation, profiling, the case study — against
// their numbers instead of the built-in behavioural models.
//
// Text format (see parse_machine_tables):
//
//   # comment
//   nodes = 32
//   nominal_flops = 250e6
//   noise_sigma = 0.02
//   exec matmul 2000 : 130.1 66.2 45.0 ...   # one value per p = 1..nodes
//   exec matadd 2000 : 22.9 11.6 ...
//   startup : 0.72 0.78 ...                  # one value per p
//   redist 1 : 0.11 0.12 ...                 # row p_src = 1, p_dst = 1..nodes
//   redist 2 : ...
//
// Missing redist rows fall back to the nearest provided p_src row; exec
// tables must cover every p.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "mtsched/core/matrix.hpp"
#include "mtsched/machine/machine_model.hpp"

namespace mtsched::machine {

/// Raw measurement tables (all times in seconds).
struct MachineTables {
  int num_nodes = 0;
  double nominal_flops = 250e6;
  double noise_sigma = 0.0;
  /// Mean execution seconds per (kernel, n), indexed by p - 1; each vector
  /// must have num_nodes entries.
  std::map<std::pair<dag::TaskKernel, int>, std::vector<double>> exec;
  /// Mean startup seconds, indexed by p - 1.
  std::vector<double> startup;
  /// Redistribution overhead rows: p_src - 1 -> per-p_dst vector. Sparse;
  /// lookups use the nearest provided row.
  std::map<int, std::vector<double>> redist_rows;
};

class TableMachineModel final : public MachineModel {
 public:
  /// Validates completeness (num_nodes >= 1, exec tables full-length,
  /// startup full-length, at least one redist row, positive times).
  explicit TableMachineModel(MachineTables tables);

  double exec_time_mean(dag::TaskKernel k, int n, int p) const override;
  double startup_mean(int p) const override;
  double redist_overhead_mean(int p_src, int p_dst) const override;
  double nominal_flops() const override { return tables_.nominal_flops; }
  int max_procs() const override { return tables_.num_nodes; }
  double noise_sigma() const override { return tables_.noise_sigma; }

  const MachineTables& tables() const { return tables_; }

 private:
  MachineTables tables_;
};

/// Parses the text format described above. Throws core::ParseError on
/// malformed input and core::InvalidArgument on incomplete tables.
MachineTables parse_machine_tables(const std::string& text);

/// Serializes tables back to the same format (round-trips).
std::string to_text(const MachineTables& tables);

/// Snapshots any machine model's noise-free means into tables (for the
/// given kernel/dimension pairs), e.g. to export the built-in behavioural
/// model as a measurement file.
MachineTables snapshot_tables(
    const MachineModel& model,
    const std::vector<std::pair<dag::TaskKernel, int>>& workloads);

}  // namespace mtsched::machine
