// Execution traces: the per-task and per-edge timing record produced when
// a schedule is replayed, by the simulator or by the execution framework.
// The span structure mirrors the TGrid task lifecycle:
//   startup (JVM spawn) -> wait for inbound redistributions -> compute.
#pragma once

#include <string>
#include <vector>

#include "mtsched/dag/dag.hpp"

namespace mtsched::sched {

/// Timing of one executed task.
struct TaskSpan {
  double startup_begin = 0.0;  ///< processors seized, startup begins
  double exec_begin = 0.0;     ///< computation begins (data available)
  double finish = 0.0;         ///< output complete, processors released
};

/// Timing of one executed redistribution (DAG edge).
struct EdgeSpan {
  dag::TaskId src = dag::kInvalidTask;
  dag::TaskId dst = dag::kInvalidTask;
  double request = 0.0;   ///< both sides ready, registration requested
  double transfer = 0.0;  ///< payload transfer begins
  double done = 0.0;      ///< data available at the destination
};

/// Full replay record.
struct RunTrace {
  std::vector<TaskSpan> tasks;  ///< indexed by TaskId
  std::vector<EdgeSpan> edges;  ///< in DAG edge order
  double makespan = 0.0;

  /// ASCII Gantt chart over the given processor assignment (one row per
  /// processor, `width` character columns spanning [0, makespan]).
  std::string ascii_gantt(const dag::Dag& g,
                          const std::vector<std::vector<int>>& procs_of_task,
                          int num_procs, int width = 100) const;

  /// CSV rows: task,<id>,<startup_begin>,<exec_begin>,<finish> and
  /// edge,<src>,<dst>,<request>,<transfer>,<done>.
  std::string to_csv() const;
};

}  // namespace mtsched::sched
