// Tests for 1-D block layouts and redistribution planning, including the
// conservation property the paper's Section IV-2 relies on.
#include <gtest/gtest.h>

#include <tuple>

#include "mtsched/core/error.hpp"
#include "mtsched/core/units.hpp"
#include "mtsched/redist/plan.hpp"

namespace {

using namespace mtsched::redist;
using mtsched::core::InvalidArgument;

TEST(BlockLayout, EvenDivision) {
  BlockLayout1D l(100, 4);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(l.num_columns(r), 25);
  EXPECT_EQ(l.columns_of(0), std::make_pair(0, 25));
  EXPECT_EQ(l.columns_of(3), std::make_pair(75, 100));
}

TEST(BlockLayout, RemainderGoesToFirstRanks) {
  BlockLayout1D l(10, 3);  // 4, 3, 3
  EXPECT_EQ(l.num_columns(0), 4);
  EXPECT_EQ(l.num_columns(1), 3);
  EXPECT_EQ(l.num_columns(2), 3);
  EXPECT_EQ(l.columns_of(1), std::make_pair(4, 7));
}

TEST(BlockLayout, OwnerIsConsistentWithColumns) {
  BlockLayout1D l(2000, 7);
  for (int r = 0; r < 7; ++r) {
    const auto [b, e] = l.columns_of(r);
    for (int c = b; c < e; c += 37) EXPECT_EQ(l.owner(c), r);
    EXPECT_EQ(l.owner(e - 1), r);
  }
}

TEST(BlockLayout, BytesOfUsesElementSize) {
  BlockLayout1D l(100, 4);
  EXPECT_DOUBLE_EQ(l.bytes_of(0), 25.0 * 100.0 * 8.0);
}

TEST(BlockLayout, Validation) {
  EXPECT_THROW(BlockLayout1D(0, 1), InvalidArgument);
  EXPECT_THROW(BlockLayout1D(10, 0), InvalidArgument);
  EXPECT_THROW(BlockLayout1D(4, 8), InvalidArgument);  // p > n
  BlockLayout1D ok(10, 10);
  EXPECT_EQ(ok.num_columns(9), 1);
  EXPECT_THROW(ok.columns_of(10), InvalidArgument);
  EXPECT_THROW(ok.owner(10), InvalidArgument);
}

TEST(IntervalOverlap, Cases) {
  EXPECT_EQ(interval_overlap({0, 10}, {5, 15}), 5);
  EXPECT_EQ(interval_overlap({0, 10}, {10, 20}), 0);
  EXPECT_EQ(interval_overlap({0, 10}, {2, 4}), 2);
  EXPECT_EQ(interval_overlap({5, 6}, {0, 100}), 1);
  EXPECT_EQ(interval_overlap({0, 1}, {2, 3}), 0);
}

TEST(Plan, IdentityRedistributionIsDiagonal) {
  const auto plan = plan_block_redistribution(100, 4, 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i == j) {
        EXPECT_GT(plan.bytes(i, j), 0.0);
      } else {
        EXPECT_DOUBLE_EQ(plan.bytes(i, j), 0.0);
      }
    }
  }
  EXPECT_EQ(plan.num_messages(), 4);
}

TEST(Plan, OneToMany) {
  const auto plan = plan_block_redistribution(100, 1, 4);
  EXPECT_EQ(plan.p_src(), 1);
  EXPECT_EQ(plan.p_dst(), 4);
  EXPECT_EQ(plan.num_messages(), 4);
  EXPECT_DOUBLE_EQ(plan.total_bytes(), mtsched::core::matrix_bytes(100));
}

TEST(Plan, ManyToOne) {
  const auto plan = plan_block_redistribution(100, 4, 1);
  EXPECT_EQ(plan.num_messages(), 4);
  EXPECT_DOUBLE_EQ(plan.total_bytes(), mtsched::core::matrix_bytes(100));
}

TEST(Plan, RowAndColumnTotalsMatchLayouts) {
  const int n = 2000, ps = 5, pd = 8;
  const auto plan = plan_block_redistribution(n, ps, pd);
  const BlockLayout1D src(n, ps), dst(n, pd);
  for (int i = 0; i < ps; ++i) {
    EXPECT_DOUBLE_EQ(plan.bytes.row_total(i), src.bytes_of(i));
  }
  for (int j = 0; j < pd; ++j) {
    EXPECT_DOUBLE_EQ(plan.bytes.col_total(j), dst.bytes_of(j));
  }
}

TEST(OverlapColumns, RequiresSameDimension) {
  BlockLayout1D a(100, 2), b(200, 2);
  EXPECT_THROW(overlap_columns(a, b, 0, 0), InvalidArgument);
}

/// Property sweep over (n, p_src, p_dst): every plan conserves the matrix
/// (total bytes equals the full n-by-n payload) and each message count is
/// bounded by p_src + p_dst - 1 (contiguous interval overlap structure).
class PlanConservation
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PlanConservation, ConservesAndBoundsMessages) {
  const auto [n, ps, pd] = GetParam();
  const auto plan = plan_block_redistribution(n, ps, pd);
  EXPECT_NEAR(plan.total_bytes(), mtsched::core::matrix_bytes(n), 1e-6);
  EXPECT_LE(plan.num_messages(), ps + pd - 1);
  EXPECT_GE(plan.num_messages(), std::max(ps, pd));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlanConservation,
    ::testing::Combine(::testing::Values(100, 2000, 3000),
                       ::testing::Values(1, 2, 5, 13, 32),
                       ::testing::Values(1, 3, 8, 32)));

}  // namespace
