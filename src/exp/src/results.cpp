#include "mtsched/exp/results.hpp"

#include <sstream>

#include "mtsched/core/error.hpp"
#include "mtsched/core/table.hpp"

namespace mtsched::exp {

namespace {

// Shortest round-trip decimals keep the JSON/CSV writers
// thread-count-independent: equal doubles always render to equal bytes.
using core::fmt_roundtrip;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

template <typename T, typename Fn>
void write_json_array(std::ostringstream& os, const std::vector<T>& xs,
                      const Fn& one) {
  os << '[';
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) os << ',';
    one(xs[i]);
  }
  os << ']';
}

std::string join_allocation(const std::vector<int>& alloc) {
  std::string s;
  for (std::size_t i = 0; i < alloc.size(); ++i) {
    if (i) s += '|';
    s += std::to_string(alloc[i]);
  }
  return s;
}

std::vector<std::string> split_line(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(line);
  while (std::getline(is, item, sep)) out.push_back(item);
  // std::getline drops a trailing empty field; the campaign CSV never has
  // empty trailing fields, so this is fine.
  return out;
}

double parse_double_field(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument("junk");
    return v;
  } catch (const std::exception&) {
    throw core::ParseError(std::string("campaign CSV: bad ") + what + " '" +
                           s + "'");
  }
}

std::uint64_t parse_u64_field(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(s, &pos);
    if (pos != s.size()) throw std::invalid_argument("junk");
    return v;
  } catch (const std::exception&) {
    throw core::ParseError(std::string("campaign CSV: bad ") + what + " '" +
                           s + "'");
  }
}

constexpr const char* kCsvHeader =
    "suite_seed,dag,dim,model,algorithm,exp_seed,run_seed,allocation,"
    "makespan_sim,makespan_exp,sim_error_percent";

}  // namespace

std::string to_json(const CampaignSpec& spec, const CampaignResult& result) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"mtsched.campaign.v1\",\n  \"spec\": {\n";

  // Empty spec fields mean "the documented default"; echo what actually ran.
  os << "    \"suite_seeds\": ";
  if (spec.suites.empty()) {
    os << "[2011]";
  } else {
    write_json_array(os, spec.suites,
                     [&](const SuiteSpec& s) { os << s.seed; });
  }
  os << ",\n    \"algorithms\": ";
  if (spec.algorithms.empty()) {
    os << "[\"HCPA\",\"MCPA\"]";
  } else {
    write_json_array(os, spec.algorithms, [&](const AlgoSpec& a) {
      os << '"' << json_escape(a.label) << '"';
    });
  }
  os << ",\n    \"models\": ";
  write_json_array(os, spec.models, [&](const ModelRef& m) {
    os << '"' << json_escape(m.label) << '"';
  });
  os << ",\n    \"dims\": ";
  write_json_array(os, spec.dims, [&](int d) { os << d; });
  os << ",\n    \"exp_seeds\": ";
  write_json_array(os, spec.exp_seeds, [&](std::uint64_t s) { os << s; });
  os << "\n  },\n";

  os << "  \"jobs\": " << result.metrics.jobs << ",\n";
  os << "  \"cache\": {\"hits\": " << result.metrics.cache_hits
     << ", \"misses\": " << result.metrics.cache_misses << "},\n";

  os << "  \"runs\": [\n";
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    const RunRecord& r = result.records[i];
    os << "    {\"suite_seed\": " << r.suite_seed << ", \"dag\": \""
       << json_escape(r.dag) << "\", \"dim\": " << r.matrix_dim
       << ", \"model\": \"" << json_escape(r.model) << "\", \"algorithm\": \""
       << json_escape(r.algorithm) << "\", \"exp_seed\": " << r.exp_seed
       << ", \"run_seed\": " << r.run_seed << ", \"allocation\": ";
    write_json_array(os, r.allocation, [&](int p) { os << p; });
    os << ", \"makespan_sim\": " << fmt_roundtrip(r.makespan_sim)
       << ", \"makespan_exp\": " << fmt_roundtrip(r.makespan_exp)
       << ", \"sim_error_percent\": " << fmt_roundtrip(r.sim_error_percent())
       << '}';
    if (i + 1 < result.records.size()) os << ',';
    os << '\n';
  }
  os << "  ]\n}\n";
  return os.str();
}

std::string to_csv(const std::vector<RunRecord>& records) {
  std::ostringstream os;
  os << kCsvHeader << '\n';
  for (const RunRecord& r : records) {
    os << r.suite_seed << ',' << r.dag << ',' << r.matrix_dim << ','
       << r.model << ',' << r.algorithm << ',' << r.exp_seed << ','
       << r.run_seed << ',' << join_allocation(r.allocation) << ','
       << fmt_roundtrip(r.makespan_sim) << ',' << fmt_roundtrip(r.makespan_exp)
       << ',' << fmt_roundtrip(r.sim_error_percent()) << '\n';
  }
  return os.str();
}

std::vector<RunRecord> parse_campaign_csv(const std::string& csv) {
  std::istringstream is(csv);
  std::string line;
  if (!std::getline(is, line) || line != kCsvHeader) {
    throw core::ParseError(
        "campaign CSV: missing or unexpected header line");
  }
  std::vector<RunRecord> out;
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto fields = split_line(line, ',');
    if (fields.size() != 11) {
      throw core::ParseError("campaign CSV line " + std::to_string(lineno) +
                             ": expected 11 fields, got " +
                             std::to_string(fields.size()));
    }
    RunRecord r;
    r.suite_seed = parse_u64_field(fields[0], "suite_seed");
    r.dag = fields[1];
    r.matrix_dim = static_cast<int>(parse_u64_field(fields[2], "dim"));
    r.model = fields[3];
    r.algorithm = fields[4];
    r.exp_seed = parse_u64_field(fields[5], "exp_seed");
    r.run_seed = parse_u64_field(fields[6], "run_seed");
    for (const auto& p : split_line(fields[7], '|')) {
      r.allocation.push_back(
          static_cast<int>(parse_u64_field(p, "allocation")));
    }
    r.makespan_sim = parse_double_field(fields[8], "makespan_sim");
    r.makespan_exp = parse_double_field(fields[9], "makespan_exp");
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace mtsched::exp
