#include "mtsched/redist/layout.hpp"

#include <algorithm>

#include "mtsched/core/error.hpp"
#include "mtsched/core/units.hpp"

namespace mtsched::redist {

BlockLayout1D::BlockLayout1D(int n, int p) : n_(n), p_(p) {
  MTSCHED_REQUIRE(n >= 1, "matrix dimension must be >= 1");
  MTSCHED_REQUIRE(p >= 1, "processor count must be >= 1");
  MTSCHED_REQUIRE(p <= n, "cannot give every processor at least one column");
  base_ = n / p;
  extra_ = n % p;
}

std::pair<int, int> BlockLayout1D::columns_of(int rank) const {
  MTSCHED_REQUIRE(rank >= 0 && rank < p_, "rank out of range");
  int begin;
  if (rank < extra_) {
    begin = rank * (base_ + 1);
  } else {
    begin = extra_ * (base_ + 1) + (rank - extra_) * base_;
  }
  const int len = rank < extra_ ? base_ + 1 : base_;
  return {begin, begin + len};
}

int BlockLayout1D::num_columns(int rank) const {
  const auto [b, e] = columns_of(rank);
  return e - b;
}

int BlockLayout1D::owner(int col) const {
  MTSCHED_REQUIRE(col >= 0 && col < n_, "column out of range");
  const int wide = base_ + 1;
  const int boundary = extra_ * wide;
  if (col < boundary) return col / wide;
  return extra_ + (col - boundary) / base_;
}

double BlockLayout1D::bytes_of(int rank) const {
  return static_cast<double>(num_columns(rank)) * static_cast<double>(n_) *
         core::kElemBytes;
}

int interval_overlap(std::pair<int, int> a, std::pair<int, int> b) {
  return std::max(0, std::min(a.second, b.second) - std::max(a.first, b.first));
}

}  // namespace mtsched::redist
