# Empty dependencies file for simcore_engine_test.
# This may be replaced when dependencies are built.
