file(REMOVE_RECURSE
  "CMakeFiles/hetero_virtual_cluster.dir/hetero_virtual_cluster.cpp.o"
  "CMakeFiles/hetero_virtual_cluster.dir/hetero_virtual_cluster.cpp.o.d"
  "hetero_virtual_cluster"
  "hetero_virtual_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_virtual_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
