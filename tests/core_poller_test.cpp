// Poller (core/poller.hpp) unit tests: readiness reporting, interest
// updates and parking, removal, the cross-thread wake pipe, and
// timeouts.
#include "mtsched/core/poller.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "mtsched/core/error.hpp"

namespace {

using namespace mtsched;
using core::net::Poller;

/// A connected AF_UNIX stream pair with RAII cleanup — readiness
/// semantics match TCP without needing a listener.
struct SocketPair {
  int a = -1;
  int b = -1;

  SocketPair() {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      throw core::Error("socketpair failed");
    }
    a = fds[0];
    b = fds[1];
  }

  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(Poller, ReportsReadableWhenDataArrives) {
  SocketPair pair;
  Poller poller;
  poller.add(pair.a, Poller::kRead);
  EXPECT_EQ(poller.size(), 1u);

  // Nothing to read yet: a bounded wait comes back empty.
  EXPECT_TRUE(poller.wait(10).empty());

  ASSERT_EQ(::write(pair.b, "x", 1), 1);
  const auto& events = poller.wait(1000);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].fd, pair.a);
  EXPECT_TRUE(events[0].readable);
  EXPECT_FALSE(events[0].writable);
}

TEST(Poller, ReportsWritableOnRequest) {
  SocketPair pair;
  Poller poller;
  // An idle stream socket has buffer space: writable immediately.
  poller.add(pair.a, Poller::kWrite);
  const auto& events = poller.wait(1000);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].fd, pair.a);
  EXPECT_TRUE(events[0].writable);
}

TEST(Poller, SetZeroParksAndSetRestores) {
  SocketPair pair;
  Poller poller;
  poller.add(pair.a, Poller::kRead);
  ASSERT_EQ(::write(pair.b, "x", 1), 1);

  // Parked: data is pending but nothing is reported (this is how the
  // server pauses reading a backpressured connection).
  poller.set(pair.a, 0);
  EXPECT_TRUE(poller.wait(10).empty());
  EXPECT_EQ(poller.size(), 1u);  // still registered

  poller.set(pair.a, Poller::kRead);
  const auto& events = poller.wait(1000);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].readable);
}

TEST(Poller, RemoveStopsReporting) {
  SocketPair pair;
  Poller poller;
  poller.add(pair.a, Poller::kRead);
  poller.remove(pair.a);
  EXPECT_EQ(poller.size(), 0u);
  ASSERT_EQ(::write(pair.b, "x", 1), 1);
  EXPECT_TRUE(poller.wait(10).empty());
}

TEST(Poller, AddRejectsDuplicatesAndSetRejectsStrangers) {
  SocketPair pair;
  Poller poller;
  poller.add(pair.a, Poller::kRead);
  EXPECT_THROW(poller.add(pair.a, Poller::kRead), core::Error);
  EXPECT_THROW(poller.set(pair.b, Poller::kRead), core::Error);
  EXPECT_THROW(poller.remove(pair.b), core::Error);
}

TEST(Poller, WakeInterruptsABlockedWaitFromAnotherThread) {
  Poller poller;
  std::thread waker([&poller] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    poller.wake();
  });
  // No fds registered and no timeout: only wake() can end this wait.
  const auto& events = poller.wait(-1);
  waker.join();
  EXPECT_TRUE(events.empty());  // the wake pipe itself is never reported
}

TEST(Poller, WakeBeforeWaitIsNotLost) {
  Poller poller;
  poller.wake();
  poller.wake();  // coalesces with the first
  EXPECT_TRUE(poller.wait(1000).empty());
  // Drained: the next bounded wait times out instead of spinning.
  EXPECT_TRUE(poller.wait(10).empty());
}

TEST(Poller, ReportsAHungUpPeer) {
  SocketPair pair;
  Poller poller;
  poller.add(pair.a, Poller::kRead);
  ::close(pair.b);
  pair.b = -1;
  const auto& events = poller.wait(1000);
  ASSERT_EQ(events.size(), 1u);
  // EOF surfaces as readable and/or POLLHUP; either way the owner gets
  // an event to act on.
  EXPECT_TRUE(events[0].readable || events[0].error);
}

TEST(Poller, MultiplexesManyFds) {
  std::vector<std::unique_ptr<SocketPair>> pairs;
  Poller poller;
  for (int i = 0; i < 8; ++i) {
    pairs.push_back(std::make_unique<SocketPair>());
    poller.add(pairs.back()->a, Poller::kRead);
  }
  ASSERT_EQ(::write(pairs[2]->b, "x", 1), 1);
  ASSERT_EQ(::write(pairs[6]->b, "x", 1), 1);
  const auto& events = poller.wait(1000);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE((events[0].fd == pairs[2]->a && events[1].fd == pairs[6]->a) ||
              (events[0].fd == pairs[6]->a && events[1].fd == pairs[2]->a));
}

}  // namespace
