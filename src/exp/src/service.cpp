#include "mtsched/exp/service.hpp"

#include <algorithm>
#include <future>
#include <utility>
#include <vector>

namespace mtsched::exp {

namespace {
using Clock = std::chrono::steady_clock;
}

Service::Service(const Lab& lab, ServiceConfig cfg, obs::Sink* sink)
    : cfg_(cfg),
      session_(lab, SessionOptions{cfg.cache_shards}),
      sink_(sink),
      pool_(cfg.threads == 0 ? core::ThreadPool::recommended_threads()
                             : cfg.threads) {
  obs::MetricsRegistry* mreg = sink_ != nullptr ? sink_->metrics() : nullptr;
  if (mreg != nullptr) {
    accepted_ = &mreg->counter("service.accepted");
    rejected_ = &mreg->counter("service.rejected");
    completed_ = &mreg->counter("service.completed");
    batches_counter_ = &mreg->counter("service.batches");
    batched_counter_ = &mreg->counter("service.batched_requests");
    batch_size_ = &mreg->histogram("service.batch_size");
    latency_ = &mreg->histogram("service.latency_seconds");
  }
}

bool Service::submit(ScheduleRequest req, Done done) {
  // Optimistically claim a slot; back out when the claim oversubscribes.
  // Two racing submits for the last slot cannot both win: each sees its
  // own fetch_add result.
  if (in_flight_.fetch_add(1, std::memory_order_acq_rel) >=
      cfg_.queue_limit) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    if (rejected_ != nullptr) rejected_->add();
    return false;
  }
  if (accepted_ != nullptr) accepted_->add();

  Pending pending;
  pending.req = std::move(req);
  pending.done = std::move(done);
  pending.admitted_at = Clock::now();
  if (sink_ != nullptr) {
    pending.track = sink_->track(
        "request " +
        std::to_string(next_request_id_.fetch_add(1,
                                                  std::memory_order_relaxed)));
  }
  {
    std::unique_lock lock(pending_mutex_);
    pending_.push_back(std::move(pending));
  }
  pool_.submit([this] { drain(); });
  return true;
}

void Service::drain() {
  // Sweep whatever is pending into this worker's batch. Under light load
  // that is exactly the one request whose submit scheduled this drain;
  // under backlog the first free worker takes the whole queue (capped)
  // and the drains scheduled by the swept requests find it empty.
  std::vector<Pending> batch;
  {
    std::unique_lock lock(pending_mutex_);
    const std::size_t take = std::min(
        pending_.size(), std::max<std::size_t>(1, cfg_.max_batch));
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
  }
  if (batch.empty()) return;

  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(batch.size(), std::memory_order_relaxed);
  std::uint64_t seen = max_batch_.load(std::memory_order_relaxed);
  while (seen < batch.size() &&
         !max_batch_.compare_exchange_weak(seen, batch.size(),
                                           std::memory_order_relaxed)) {
  }
  if (batches_counter_ != nullptr) batches_counter_->add();
  if (batched_counter_ != nullptr) batched_counter_->add(batch.size());
  if (batch_size_ != nullptr) {
    batch_size_->observe(static_cast<double>(batch.size()));
  }

  Session::BatchScope scope(session_);
  for (Pending& p : batch) {
    ScheduleResponse resp;
    {
      const obs::ScopedContext ctx(
          p.track, sink_ != nullptr ? sink_->metrics() : nullptr);
      const obs::Span span(p.track, "service", "request");
      resp = scope.run(p.req);
    }
    if (latency_ != nullptr) {
      latency_->observe(
          std::chrono::duration<double>(Clock::now() - p.admitted_at)
              .count());
    }
    if (completed_ != nullptr) completed_->add();
    // The slot frees only after the response is delivered: queue_limit
    // bounds admitted-but-unfinished requests, including ones blocked on
    // a slow consumer.
    p.done(resp);
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

ScheduleResponse Service::call(const ScheduleRequest& req) {
  std::promise<ScheduleResponse> delivered;
  auto response = delivered.get_future();
  const bool admitted = submit(req, [&delivered](const ScheduleResponse& r) {
    delivered.set_value(r);
  });
  if (!admitted) return reject_response();
  return response.get();
}

ScheduleResponse Service::reject_response() const {
  ScheduleResponse resp;
  resp.status = ServiceStatus::Overloaded;
  resp.message = "service overloaded: admission control rejected the "
                 "request (queue limit " +
                 std::to_string(cfg_.queue_limit) + "); retry later";
  return resp;
}

ServiceBatchStats Service::batch_stats() const {
  ServiceBatchStats s;
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  s.max_batch = max_batch_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mtsched::exp
