# Empty dependencies file for fig8_error_boxplots.
# This may be replaced when dependencies are built.
