// The mtsched rpc server: accepts loopback connections, decodes
// mtsched.rpc.v1 frames (see rpc.hpp) and serves them through an
// exp::Service.
//
// One event-loop thread (the caller of serve()) multiplexes every
// connection over a core::net::Poller — no per-connection threads. A
// connection may pipeline any number of requests; schedule requests are
// dispatched to the service's worker pool and each connection gets
// exactly one response frame per request, in request order (a
// per-connection slot queue holds responses that finish out of order
// until everything before them has been written). Wire format and
// semantics are unchanged from the thread-per-connection server:
// responses are byte-identical to a local Session::run.
//
// Backpressure: a connection that has too many responses in flight, or
// whose peer reads too slowly to drain its write buffer, stops being
// *read* (its requests wait in the kernel socket buffer, which
// eventually pushes back on the client through TCP) until it catches
// up. One slow or greedy client therefore cannot queue unbounded server
// memory nor starve the admission slots of other connections.
//
// Protocol errors are answered in-band where possible: an undecodable
// payload gets a BadRequest response on the same connection (the frame
// boundary is still intact); an oversized or truncated *frame* gets a
// best-effort BadRequest and the connection dropped (the byte stream
// can no longer be trusted) — without poisoning other connections.
// Admission-control rejections come back as Overloaded responses — the
// connection stays usable for retries.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mtsched/core/net.hpp"
#include "mtsched/core/poller.hpp"
#include "mtsched/exp/service.hpp"

namespace mtsched::exp {

struct RpcServerConfig {
  std::uint16_t port = 0;  ///< 0 picks an ephemeral port (see port())
  std::size_t max_frame_bytes = core::net::kDefaultMaxFrameBytes;

  /// Most responses one connection may have owed (pipelined requests
  /// admitted but not yet written back) before the server stops reading
  /// from it.
  std::size_t max_conn_inflight = 64;

  /// Most unwritten response bytes buffered for one connection before
  /// the server stops reading from it (a slow reader pipelining large
  /// responses cannot grow server memory without bound).
  std::size_t max_write_buffer_bytes = 4u << 20;
};

/// Cumulative server statistics (monotone counters, readable live).
struct RpcServerStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;         ///< decoded schedule/ping/shutdown
  std::uint64_t rejected = 0;         ///< Overloaded responses sent
  std::uint64_t protocol_errors = 0;  ///< undecodable frames or payloads
  /// Times a connection was paused for reading because it hit
  /// max_conn_inflight or max_write_buffer_bytes.
  std::uint64_t backpressure_pauses = 0;
  /// Service micro-batcher counters (see ServiceBatchStats).
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;
  std::uint64_t max_batch = 0;
};

class RpcServer {
 public:
  /// Binds immediately (so port() is valid before serve()); `service`
  /// must outlive the server. Throws core::Error when binding fails.
  explicit RpcServer(Service& service, RpcServerConfig cfg = {});

  /// Requires serve() to have returned (stop it with shutdown() and
  /// join the serving thread first); waits out any service callbacks
  /// still delivering into the completion queue.
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// The event loop: accepts, reads, dispatches and writes until
  /// shutdown() (from another thread or via a shutdown rpc), then
  /// drains the responses it still owes and returns. Call from exactly
  /// one thread.
  void serve();

  /// Asks the event loop to stop: no new connections, no new requests;
  /// responses already owed are still delivered, idle connections are
  /// closed. Idempotent, callable from any thread (including service
  /// workers and the loop itself).
  void shutdown();

  bool stopping() const {
    return stopping_.load(std::memory_order_acquire);
  }

  RpcServerStats stats() const;

  /// Currently open connections (0 again after clients disconnect — the
  /// loop releases a connection's resources as soon as it dies).
  std::size_t open_connections() const {
    return open_connections_.load(std::memory_order_relaxed);
  }

 private:
  /// One owed response. Allocated (not ready) when a frame is parsed,
  /// filled in request order or out of it, written strictly in order.
  struct Slot {
    bool ready = false;
    std::string bytes;  ///< encoded response payload (unframed)
  };

  /// Per-connection state. `slots` front has sequence `first_seq`;
  /// `next_seq` numbers the next parsed frame. `rbuf`/`wbuf` carry
  /// consumed prefixes (`rpos`/`wpos`) compacted lazily.
  struct Conn {
    core::net::Socket sock;
    std::uint64_t id = 0;
    std::string rbuf;
    std::size_t rpos = 0;
    std::string wbuf;
    std::size_t wpos = 0;
    std::deque<Slot> slots;
    std::uint64_t first_seq = 0;
    std::uint64_t next_seq = 0;
    bool paused = false;    ///< read interest dropped by backpressure
    bool draining = false;  ///< no more reads; close once nothing is owed
    bool dead = false;      ///< reaped at the top of the loop
  };

  /// A finished schedule response travelling from a service worker to
  /// the event loop. Keyed by connection id (not fd — fds are recycled)
  /// and slot sequence.
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::string bytes;
  };

  void accept_new();
  void on_readable(Conn& c);
  void on_eof(Conn& c);
  /// Parse + flush until quiescent (a freed slot may unpause parsing,
  /// a parsed ping may free a slot, ...).
  void pump(Conn& c);
  bool parse_frames(Conn& c);
  void handle_frame(Conn& c, const std::string& payload);
  bool flush(Conn& c);
  bool append_frame(Conn& c, const std::string& payload);
  Slot& new_slot(Conn& c);
  void push_error_slot(Conn& c, const std::string& message);
  bool read_capped(const Conn& c) const;
  void update_interest(Conn& c);
  bool drain_completions();
  bool completions_empty();
  void reap_dead();
  void teardown(bool listening);

  Service& service_;
  const RpcServerConfig cfg_;
  core::net::Listener listener_;
  core::net::Poller poller_;
  std::atomic<bool> stopping_{false};

  /// Loop-thread state (no lock: only serve() touches these).
  std::unordered_map<int, Conn> conns_;               // by fd
  std::unordered_map<std::uint64_t, int> fd_of_;      // conn id -> fd
  std::uint64_t next_conn_id_ = 1;

  /// Worker -> loop handoff.
  std::mutex completions_mutex_;
  std::vector<Completion> completions_;
  /// Schedule requests handed to the service whose done-callback has
  /// not finished yet; the loop exits (and the destructor returns) only
  /// at zero, so callbacks never touch a dead server.
  std::atomic<std::size_t> dispatched_{0};

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::size_t> open_connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> backpressure_pauses_{0};
};

/// Minimal blocking client for the rpc protocol — used by `mtsched_cli
/// request`, the loopback tests and the throughput bench. One
/// connection; either one request in flight at a time (call/ping) or
/// explicitly pipelined with send()/recv(). Not thread-safe (use one
/// client per thread).
class RpcClient {
 public:
  /// Connects immediately. Throws core::Error when the connection fails.
  RpcClient(const std::string& host, std::uint16_t port,
            std::size_t max_frame_bytes = core::net::kDefaultMaxFrameBytes);

  /// One schedule round trip. Request-level problems come back as
  /// response status codes; only transport failures throw.
  ScheduleResponse call(const ScheduleRequest& req);

  /// Pipelining: fire one schedule request without waiting. Pair every
  /// send() with a later recv(); responses come back in send order.
  void send(const ScheduleRequest& req);

  /// Blocks for the next in-order response. Throws core::Error when the
  /// server closes before delivering one.
  ScheduleResponse recv();

  /// True when response bytes are already waiting in the socket buffer,
  /// without blocking. Lets a pipelining caller drain what the server
  /// has delivered before blocking in the next send() — sitting on
  /// unread responses feeds the server's write backpressure, which
  /// eventually parks reads on this connection.
  bool response_ready() const;

  /// Liveness probe (Ok/"pong" on a healthy server).
  ScheduleResponse ping();

  /// Asks the server to stop accepting; returns its acknowledgement.
  ScheduleResponse request_shutdown();

 private:
  ScheduleResponse roundtrip(const std::string& payload);

  core::net::Socket sock_;
  std::size_t max_frame_bytes_;
};

}  // namespace mtsched::exp
