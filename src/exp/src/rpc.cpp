#include "mtsched/exp/rpc.hpp"

#include <sstream>

#include "mtsched/core/error.hpp"
#include "mtsched/core/table.hpp"
#include "mtsched/obs/json.hpp"

namespace mtsched::exp {

namespace {

constexpr const char* kWhat = "mtsched rpc JSON";

const std::string& as_string(const obs::json::Value& v,
                             const std::string& key) {
  if (v.type != obs::json::Value::Type::String) {
    throw core::ParseError(std::string(kWhat) + ": member '" + key +
                           "' must be a string");
  }
  return v.str;
}

bool as_bool(const obs::json::Value& v, const std::string& key) {
  if (v.type != obs::json::Value::Type::Bool) {
    throw core::ParseError(std::string(kWhat) + ": member '" + key +
                           "' must be a boolean");
  }
  return v.boolean;
}

double as_number(const obs::json::Value& v, const std::string& key) {
  if (v.type != obs::json::Value::Type::Number) {
    throw core::ParseError(std::string(kWhat) + ": member '" + key +
                           "' must be a number");
  }
  return v.num;
}

/// Seeds travel as decimal strings (doubles would round past 2^53).
std::uint64_t as_seed(const obs::json::Value& v, const std::string& key) {
  const std::string& text = as_string(v, key);
  try {
    std::size_t used = 0;
    const std::uint64_t seed = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return seed;
  } catch (const std::exception&) {
    throw core::ParseError(std::string(kWhat) + ": member '" + key +
                           "' must be a decimal uint64 string, got \"" +
                           text + "\"");
  }
}

obs::json::Value parse_checked(const std::string& payload) {
  const obs::json::Value doc = obs::json::parse(payload, kWhat);
  if (doc.type != obs::json::Value::Type::Object) {
    throw core::ParseError(std::string(kWhat) + ": payload must be an object");
  }
  const std::string& schema =
      as_string(obs::json::member(doc, "schema", kWhat), "schema");
  if (schema != kRpcSchema) {
    throw core::ParseError(std::string(kWhat) + ": unsupported schema \"" +
                           schema + "\" (this peer speaks " + kRpcSchema +
                           ")");
  }
  return doc;
}

std::string quoted(const std::string& s) {
  return "\"" + obs::json::escape(s) + "\"";
}

}  // namespace

std::string encode_request(const ScheduleRequest& req) {
  std::ostringstream os;
  os << "{\"schema\":" << quoted(kRpcSchema) << ",\"type\":\"schedule\""
     << ",\"algorithm\":" << quoted(req.algorithm) << ",\"mapping\":\""
     << sched::mapping_name(req.mapping) << "\""
     << ",\"model\":" << quoted(req.model.name()) << ",\"exp_seed\":\""
     << req.exp_seed << "\",\"execute\":" << (req.execute ? "true" : "false");
  // Optional member: omitted for the default platform, keeping
  // default-platform frames byte-identical to pre-platform clients'.
  if (!req.platform.empty()) {
    os << ",\"platform\":" << quoted(req.platform);
  }
  os << ",\"dag\":" << quoted(req.dag_text) << "}";
  return os.str();
}

std::string encode_ping() {
  return std::string("{\"schema\":") + quoted(kRpcSchema) +
         ",\"type\":\"ping\"}";
}

std::string encode_shutdown() {
  return std::string("{\"schema\":") + quoted(kRpcSchema) +
         ",\"type\":\"shutdown\"}";
}

RpcRequest parse_request(const std::string& payload) {
  const obs::json::Value doc = parse_checked(payload);
  const std::string& type =
      as_string(obs::json::member(doc, "type", kWhat), "type");

  RpcRequest req;
  if (type == "ping") {
    req.type = RpcRequest::Type::Ping;
    return req;
  }
  if (type == "shutdown") {
    req.type = RpcRequest::Type::Shutdown;
    return req;
  }
  if (type != "schedule") {
    throw core::ParseError(std::string(kWhat) + ": unknown request type \"" +
                           type + "\"");
  }

  req.type = RpcRequest::Type::Schedule;
  req.schedule.algorithm =
      as_string(obs::json::member(doc, "algorithm", kWhat), "algorithm");
  const std::string& mapping =
      as_string(obs::json::member(doc, "mapping", kWhat), "mapping");
  const auto strategy = sched::parse_mapping(mapping);
  if (!strategy) {
    throw core::ParseError(std::string(kWhat) + ": unknown mapping \"" +
                           mapping +
                           "\" (earliest | redist_aware | rack_aware)");
  }
  req.schedule.mapping = *strategy;
  // Optional member, absent in pre-platform frames: empty selects the
  // server's default platform.
  if (const obs::json::Value* platform = doc.find("platform")) {
    req.schedule.platform = as_string(*platform, "platform");
  }
  req.schedule.model = models::ModelSpec::parse(
      as_string(obs::json::member(doc, "model", kWhat), "model"));
  req.schedule.exp_seed =
      as_seed(obs::json::member(doc, "exp_seed", kWhat), "exp_seed");
  req.schedule.execute =
      as_bool(obs::json::member(doc, "execute", kWhat), "execute");
  req.schedule.dag_text =
      as_string(obs::json::member(doc, "dag", kWhat), "dag");
  return req;
}

std::string encode_response(const ScheduleResponse& resp) {
  std::ostringstream os;
  os << "{\"schema\":" << quoted(kRpcSchema) << ",\"type\":\"response\""
     << ",\"status\":" << static_cast<int>(resp.status)
     << ",\"status_name\":" << quoted(status_name(resp.status))
     << ",\"message\":" << quoted(resp.message)
     << ",\"model\":" << quoted(resp.model)
     << ",\"algorithm\":" << quoted(resp.algorithm)
     << ",\"platform\":" << quoted(resp.platform) << ",\"exp_seed\":\""
     << resp.exp_seed << "\",\"executed\":"
     << (resp.executed ? "true" : "false")
     << ",\"est_makespan\":" << core::fmt_roundtrip(resp.est_makespan)
     << ",\"makespan_sim\":" << core::fmt_roundtrip(resp.makespan_sim)
     << ",\"makespan_exp\":" << core::fmt_roundtrip(resp.makespan_exp)
     << ",\"allocation\":[";
  for (std::size_t i = 0; i < resp.allocation.size(); ++i) {
    if (i > 0) os << ',';
    os << resp.allocation[i];
  }
  os << "]}";
  return os.str();
}

ScheduleResponse parse_response(const std::string& payload) {
  const obs::json::Value doc = parse_checked(payload);
  const std::string& type =
      as_string(obs::json::member(doc, "type", kWhat), "type");
  if (type != "response") {
    throw core::ParseError(std::string(kWhat) +
                           ": expected a response, got type \"" + type +
                           "\"");
  }

  ScheduleResponse resp;
  const int status = static_cast<int>(
      as_number(obs::json::member(doc, "status", kWhat), "status"));
  switch (status) {
    case 0: resp.status = ServiceStatus::Ok; break;
    case 400: resp.status = ServiceStatus::BadRequest; break;
    case 429: resp.status = ServiceStatus::Overloaded; break;
    case 500: resp.status = ServiceStatus::Internal; break;
    default:
      throw core::ParseError(std::string(kWhat) + ": unknown status code " +
                             std::to_string(status));
  }
  resp.message =
      as_string(obs::json::member(doc, "message", kWhat), "message");
  resp.model = as_string(obs::json::member(doc, "model", kWhat), "model");
  resp.algorithm =
      as_string(obs::json::member(doc, "algorithm", kWhat), "algorithm");
  // Optional member, absent in pre-platform frames.
  if (const obs::json::Value* platform = doc.find("platform")) {
    resp.platform = as_string(*platform, "platform");
  }
  resp.exp_seed =
      as_seed(obs::json::member(doc, "exp_seed", kWhat), "exp_seed");
  resp.executed =
      as_bool(obs::json::member(doc, "executed", kWhat), "executed");
  resp.est_makespan = as_number(
      obs::json::member(doc, "est_makespan", kWhat), "est_makespan");
  resp.makespan_sim = as_number(
      obs::json::member(doc, "makespan_sim", kWhat), "makespan_sim");
  resp.makespan_exp = as_number(
      obs::json::member(doc, "makespan_exp", kWhat), "makespan_exp");
  const obs::json::Value& alloc =
      obs::json::member(doc, "allocation", kWhat);
  if (alloc.type != obs::json::Value::Type::Array) {
    throw core::ParseError(std::string(kWhat) +
                           ": member 'allocation' must be an array");
  }
  resp.allocation.reserve(alloc.items.size());
  for (const auto& item : alloc.items) {
    resp.allocation.push_back(
        static_cast<int>(as_number(item, "allocation[]")));
  }
  return resp;
}

}  // namespace mtsched::exp
