#include "mtsched/models/profile.hpp"

#include <algorithm>
#include <string>

#include "mtsched/core/error.hpp"

namespace mtsched::models {

ProfileModel::ProfileModel(platform::ClusterSpec spec, ProfileTables tables)
    : CostModel(std::move(spec)), tables_(std::move(tables)) {
  MTSCHED_REQUIRE(!tables_.exec.empty(),
                  "profile model needs at least one execution table");
  for (const auto& [key, times] : tables_.exec) {
    MTSCHED_REQUIRE(!times.empty(), "empty execution profile");
    for (double v : times) {
      MTSCHED_REQUIRE(v > 0.0, "profiled execution times must be positive");
    }
    // Map iteration is ordered by (kernel, n), so each per-kernel index
    // comes out sorted by n and ready for binary search.
    exec_index_[static_cast<std::size_t>(key.first)].emplace_back(key.second,
                                                                  &times);
  }
  MTSCHED_REQUIRE(!tables_.startup.empty(), "startup table must be non-empty");
  MTSCHED_REQUIRE(!tables_.redist_by_dst.empty(),
                  "redistribution overhead table must be non-empty");
}

const std::vector<double>& ProfileModel::exec_row(dag::TaskKernel k,
                                                  int n) const {
  const auto& index = exec_index_[static_cast<std::size_t>(k)];
  const auto it = std::lower_bound(
      index.begin(), index.end(), n,
      [](const auto& entry, int value) { return entry.first < value; });
  MTSCHED_REQUIRE(it != index.end() && it->first == n,
                  "no profile for kernel '" + std::string(dag::kernel_name(k)) +
                      "' at n = " + std::to_string(n));
  return *it->second;
}

double ProfileModel::exec_lookup(dag::TaskKernel k, int n, int p) const {
  const auto& times = exec_row(k, n);
  MTSCHED_REQUIRE(p >= 1 && static_cast<std::size_t>(p) <= times.size(),
                  "no profile entry for p = " + std::to_string(p));
  return times[static_cast<std::size_t>(p - 1)];
}

TaskSimCost ProfileModel::task_sim_cost(const dag::Task& t, int p) const {
  TaskSimCost cost;
  cost.startup_seconds = startup_estimate(p);
  cost.fixed_seconds = exec_lookup(t.kernel, t.matrix_dim, p);
  return cost;
}

double ProfileModel::redist_overhead(int p_src, int p_dst) const {
  (void)p_src;  // the paper averages over p_src (Section VI-C)
  MTSCHED_REQUIRE(
      p_dst >= 1 &&
          static_cast<std::size_t>(p_dst) <= tables_.redist_by_dst.size(),
      "no redistribution overhead entry for p_dst = " + std::to_string(p_dst));
  return tables_.redist_by_dst[static_cast<std::size_t>(p_dst - 1)];
}

double ProfileModel::exec_estimate(const dag::Task& t, int p) const {
  return exec_lookup(t.kernel, t.matrix_dim, p);
}

double ProfileModel::startup_estimate(int p) const {
  MTSCHED_REQUIRE(p >= 1 &&
                      static_cast<std::size_t>(p) <= tables_.startup.size(),
                  "no startup entry for p = " + std::to_string(p));
  return tables_.startup[static_cast<std::size_t>(p - 1)];
}

void ProfileModel::task_time_curve(const dag::Task& t,
                                   std::span<double> out) const {
  const auto& times = exec_row(t.kernel, t.matrix_dim);
  MTSCHED_REQUIRE(out.size() <= times.size(),
                  "no profile entry for p = " + std::to_string(out.size()));
  MTSCHED_REQUIRE(out.size() <= tables_.startup.size(),
                  "no startup entry for p = " + std::to_string(out.size()));
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = times[i] + tables_.startup[i];
  }
}

}  // namespace mtsched::models
