// A small fixed-size worker pool for embarrassingly parallel experiment
// jobs.
//
// Design constraints (set by the campaign runner, the main consumer):
//   * deterministic results: the pool only runs closures; callers that
//     need ordered output write into preallocated slots indexed by job id,
//     so scheduling order never leaks into results;
//   * exception safety: the first exception thrown by any task is captured
//     and rethrown from wait_idle() on the calling thread — workers never
//     terminate the process;
//   * no oversubscription surprises: `recommended_threads()` is the
//     hardware concurrency clamped to [1, 64] so callers get a sane
//     default on exotic machines.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mtsched::core {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped below by 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding work (without rethrowing) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Tasks may not submit further tasks.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any task raised (if one did). The pool stays usable
  /// after wait_idle(); a pending exception is cleared once rethrown.
  void wait_idle();

  int size() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency with a [1, 64] clamp and a fallback
  /// of 1 when the hardware cannot be queried.
  static int recommended_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;  ///< queued + currently executing tasks
  std::exception_ptr first_error_;
  bool stopping_ = false;
};

/// Runs `fn(i)` for every i in [0, n) on the pool and waits for all of
/// them (rethrowing the first task exception). `fn` must be safe to call
/// concurrently from multiple workers.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace mtsched::core
