# Empty dependencies file for mtsched_redist.
# This may be replaced when dependencies are built.
