// The scheduling service: a Session fronted by a worker pool with
// admission control and a dynamic micro-batcher — what `mtsched serve`
// runs behind its socket, usable in-process by benches and tests without
// any transport.
//
// Requests are admitted up to a bounded number in flight (queued +
// executing); beyond that submit() rejects immediately with an
// Overloaded (429) response instead of queueing without bound — a busy
// daemon stays responsive and callers get an actionable signal to back
// off.
//
// Admitted requests land in a pending queue drained by core::ThreadPool
// workers in dynamic micro-batches: each drain takes *everything*
// pending (up to max_batch) and serves it through one
// Session::BatchScope, so compatible requests — same platform and cost
// model — share one sched::CostCurveTable per batch. The flush policy is
// "batch whatever is ready, never wait on a timer": an idle service
// serves each request alone with no added latency, while a saturated
// service coalesces the backlog that piled up behind the busy workers.
// Responses stay byte-identical to sequential Session::run calls (the
// BatchScope contract).
//
// Observation goes through the usual obs::Sink: one trace lane per
// request, service.{accepted,rejected,completed,batches,
// batched_requests} counters, a service.batch_size histogram and a
// service.latency_seconds histogram (admission to delivery, queue time
// included).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>

#include "mtsched/core/thread_pool.hpp"
#include "mtsched/exp/session.hpp"
#include "mtsched/obs/sink.hpp"

namespace mtsched::exp {

struct ServiceConfig {
  /// Worker threads. 0 means "one per hardware thread"
  /// (core::ThreadPool::recommended_threads()), matching
  /// CampaignSpec::threads semantics; negative values clamp to 1.
  int threads = 0;

  /// Maximum requests in flight (queued + executing + delivering their
  /// response). submit() beyond this rejects with Overloaded.
  std::size_t queue_limit = 64;

  /// Shards of the session's schedule-memo cache.
  std::size_t cache_shards = 16;

  /// Most requests one drain coalesces into a single micro-batch
  /// (clamped below by 1). Bounds the delivery latency of the last
  /// request in a batch under backlog; the queue_limit bounds the
  /// backlog itself.
  std::size_t max_batch = 16;
};

/// Cumulative micro-batcher statistics (monotone counters except
/// max_batch, readable live).
struct ServiceBatchStats {
  std::uint64_t batches = 0;           ///< non-empty drains
  std::uint64_t batched_requests = 0;  ///< requests served through drains
  std::uint64_t max_batch = 0;         ///< largest single batch so far
};

/// Thread-safe service façade over one Session. Submitting threads and
/// pool workers may race freely; the destructor drains in-flight work.
class Service {
 public:
  /// Response delivery callback. Runs on a pool worker after the request
  /// finished (or failed in-band); must not throw and must not submit
  /// further requests from within (core::ThreadPool tasks may not spawn
  /// tasks).
  using Done = std::function<void(const ScheduleResponse&)>;

  /// `lab` must outlive the service. `sink` (optional, must also outlive
  /// the service) observes requests.
  explicit Service(const Lab& lab, ServiceConfig cfg = {},
                   obs::Sink* sink = nullptr);

  /// Registers an additional platform lab with the session (see
  /// Session::add_platform). Call before submitting any request — the
  /// registry is not synchronized with serving. `lab` must outlive the
  /// service.
  void add_platform(const Lab& lab) { session_.add_platform(lab); }

  /// Drains outstanding requests, then joins the workers.
  ~Service() = default;

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Admission-controlled asynchronous submit. Returns true when the
  /// request was admitted (`done` will fire exactly once, on a worker);
  /// false when admission control rejected it (`done` never fires — send
  /// reject_response() to the caller instead).
  bool submit(ScheduleRequest req, Done done);

  /// Blocking convenience: submit, wait, return the response — or the
  /// Overloaded response when admission rejects. Safe from any thread
  /// that is not a pool worker.
  ScheduleResponse call(const ScheduleRequest& req);

  /// The 429 response a rejected submit maps to.
  ScheduleResponse reject_response() const;

  int threads() const { return pool_.size(); }
  std::size_t queue_limit() const { return cfg_.queue_limit; }

  /// Requests admitted but not yet finished (approximate under races).
  std::size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  ServiceBatchStats batch_stats() const;

  const Session& session() const { return session_; }

 private:
  /// One admitted request waiting in the pending queue.
  struct Pending {
    ScheduleRequest req;
    Done done;
    obs::Track track;
    std::chrono::steady_clock::time_point admitted_at;
  };

  /// Pool task: serve whatever is pending (up to max_batch) through one
  /// BatchScope. One drain is scheduled per admitted request, so every
  /// request has a worker coming for it; drains that find the queue
  /// empty (an earlier drain swept their request into its batch) return
  /// immediately.
  void drain();

  const ServiceConfig cfg_;
  Session session_;
  obs::Sink* sink_;
  obs::Counter* accepted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* completed_ = nullptr;
  obs::Counter* batches_counter_ = nullptr;
  obs::Counter* batched_counter_ = nullptr;
  obs::Histogram* batch_size_ = nullptr;
  obs::Histogram* latency_ = nullptr;
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> next_request_id_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<std::uint64_t> max_batch_{0};
  std::mutex pending_mutex_;
  std::deque<Pending> pending_;
  core::ThreadPool pool_;  ///< last member: joins before the rest dies
};

}  // namespace mtsched::exp
