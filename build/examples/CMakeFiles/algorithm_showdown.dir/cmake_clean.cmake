file(REMOVE_RECURSE
  "CMakeFiles/algorithm_showdown.dir/algorithm_showdown.cpp.o"
  "CMakeFiles/algorithm_showdown.dir/algorithm_showdown.cpp.o.d"
  "algorithm_showdown"
  "algorithm_showdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm_showdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
