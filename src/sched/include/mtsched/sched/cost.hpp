// Cost oracle consulted by the scheduling algorithms.
//
// In the paper the schedulers run *inside the simulator* and therefore see
// the world through whatever cost model the simulator uses (analytical,
// profile-based or empirical). This interface is that lens; adapters over
// the concrete simulator cost models live in mtsched::models.
#pragma once

#include <span>

#include "mtsched/dag/dag.hpp"

namespace mtsched::sched {

class SchedCost {
 public:
  virtual ~SchedCost() = default;

  /// Estimated execution time of task t on p processors (excluding task
  /// startup overhead). Must be positive for all 1 <= p <= P.
  virtual double exec_time(const dag::Task& t, int p) const = 0;

  /// Estimated task startup overhead for an allocation of p processors
  /// (zero under the purely analytical model).
  virtual double startup_time(int p) const = 0;

  /// Estimated time to redistribute `producer`'s output matrix from p_src
  /// to p_dst processors (payload plus protocol overhead, as far as the
  /// model knows about either). The estimate may read the producer only
  /// through its kernel and matrix_dim (the shape of its output matrix):
  /// the schedulers memoize redistribution estimates on that key and
  /// reuse them across same-shaped producers.
  virtual double redist_time(const dag::Task& producer, int p_src,
                             int p_dst) const = 0;

  /// The protocol-overhead share of redist_time (zero under the purely
  /// analytical model). Redistribution-aware mapping discounts the payload
  /// share when processor sets overlap, but never the protocol share.
  virtual double redist_overhead_time(int p_src, int p_dst) const {
    (void)p_src;
    (void)p_dst;
    return 0.0;
  }

  /// Total per-task time the allocation phase reasons about.
  double task_time(const dag::Task& t, int p) const {
    return exec_time(t, p) + startup_time(p);
  }

  /// Batched task-time curve: fills out[p - 1] with task_time(t, p) for
  /// p = 1..out.size() in one virtual call. Every entry must be
  /// bit-identical to the scalar task_time — overriding models may only
  /// batch the lookup, never change the arithmetic. The p-sweeps of the
  /// allocation phase (TaskTimeMemo) and of MHEFT consume this.
  virtual void task_time_curve(const dag::Task& t,
                               std::span<double> out) const {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = task_time(t, static_cast<int>(i) + 1);
    }
  }

  /// Batched redistribution curve over the destination size: fills
  /// out[p - 1] with redist_time(producer, p_src, p) for
  /// p = 1..out.size(). Same bit-identity contract as task_time_curve.
  virtual void redist_time_curve(const dag::Task& producer, int p_src,
                                 std::span<double> out) const {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = redist_time(producer, p_src, static_cast<int>(i) + 1);
    }
  }
};

}  // namespace mtsched::sched
