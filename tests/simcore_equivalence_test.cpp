// Equivalence sweep: the SoA engine against a naive scan-everything
// reference engine.
//
// The engine's structure-of-arrays layout (sorted delay calendar, dense
// id-ordered work class, incremental event lookahead) promises
// *bit-identical* observable behaviour to the straightforward
// array-of-structs engine it replaced: same completion order, same
// completion times, same resource consumption, double for double. This
// test reinstates the naive engine — every step rescans every activity,
// no calendar, no lookahead — and drives both from identical scripted
// workloads (timers, fluid work, latency+work, usage-free activities,
// chained submissions from completion callbacks), comparing the full
// observable sequence with exact floating-point equality.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "mtsched/core/rng.hpp"
#include "mtsched/simcore/engine.hpp"
#include "mtsched/simcore/maxmin.hpp"

namespace {

using namespace mtsched;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-12;  // the engine's completion threshold

/// One observed completion: which scripted activity finished and when.
struct Completion {
  int spec = -1;
  double t = 0.0;

  bool operator==(const Completion&) const = default;
};

/// Scripted activity: submitted either up front or by the completion
/// callback of its parent.
struct ActSpec {
  std::vector<simcore::Use> uses;
  double amount = 0.0;
  double delay = 0.0;
  std::vector<int> children;  ///< spec indices submitted on completion
};

struct Workload {
  std::vector<double> capacities;
  std::vector<ActSpec> specs;
  std::vector<int> roots;  ///< spec indices submitted before run()
};

// --- naive reference engine ---------------------------------------------

/// Array-of-structs engine with the exact semantics of simcore::Engine:
/// same completion threshold, same rate solver fed in ascending-id order,
/// same "transitions do no work in their expiry step" rule, same
/// ascending-id completion order. Every step rescans every live activity.
class NaiveEngine {
 public:
  using CompletionFn = std::function<void(double)>;

  std::size_t add_resource(double capacity) {
    capacities_.push_back(capacity);
    usage_.push_back(0.0);
    return capacities_.size() - 1;
  }

  void submit(std::vector<simcore::Use> uses, double amount, double delay,
              CompletionFn on_complete) {
    Act a;
    a.id = next_id_++;
    a.uses = std::move(uses);
    a.rem = amount;
    a.cb = std::move(on_complete);
    rates_dirty_ = true;
    if (delay > 0.0) {
      a.in_latency = true;
      a.rem_delay = delay;
    } else {
      a.working = true;
      if (a.uses.empty()) {
        a.rate = kInf;
      } else {
        a.rate = 0.0;
        solve_dirty_ = true;
      }
    }
    acts_.push_back(std::move(a));  // ids are monotonic: stays id-sorted
  }

  void run() {
    while (step()) {
    }
  }

  double now() const { return now_; }
  std::uint64_t events_processed() const { return events_; }
  double resource_usage(std::size_t r) const { return usage_[r]; }

 private:
  struct Act {
    std::uint64_t id = 0;
    std::vector<simcore::Use> uses;
    double rem_delay = 0.0;
    double rem = 0.0;
    double rate = 0.0;
    bool in_latency = false;
    bool working = false;
    bool fresh = false;  ///< entered the work phase this step
    bool done = false;
    CompletionFn cb;
  };

  bool step() {
    if (acts_.empty()) return false;
    if (rates_dirty_) {
      if (solve_dirty_) solve();
      rates_dirty_ = false;
    }

    // Next event: full scan over every live activity.
    double dt = kInf;
    for (const Act& a : acts_) {
      if (a.in_latency) {
        dt = std::min(dt, a.rem_delay);
      } else if (a.rem <= kEps || a.uses.empty() || std::isinf(a.rate)) {
        dt = 0.0;
      } else {
        dt = std::min(dt, a.rem / a.rate);
      }
    }
    EXPECT_TRUE(std::isfinite(dt));
    now_ += dt;

    // Latency phase, ascending id: expire, transition, complete the
    // activities with nothing left to do.
    for (Act& a : acts_) {
      if (!a.in_latency) continue;
      a.rem_delay -= dt;
      if (a.rem_delay > kEps) continue;
      a.in_latency = false;
      a.working = true;
      rates_dirty_ = true;
      if (!a.uses.empty()) solve_dirty_ = true;
      if (a.rem <= kEps || a.uses.empty()) {
        a.done = true;
      } else {
        a.rate = 0.0;
        a.fresh = true;  // no work in the expiry step
      }
    }

    // Work phase, ascending id: advance, account consumption, complete.
    for (Act& a : acts_) {
      if (!a.working || a.fresh || a.done || a.in_latency) continue;
      if (!a.uses.empty() && !std::isinf(a.rate)) {
        a.rem -= a.rate * dt;
        for (const auto& u : a.uses) {
          usage_[u.resource] += u.weight * a.rate * dt;
        }
      }
      if (a.rem <= kEps || a.uses.empty() || std::isinf(a.rate)) {
        a.done = true;
      }
    }
    for (Act& a : acts_) a.fresh = false;

    // Completions, ascending id: bookkeeping first, then callbacks, then
    // removal — callbacks may submit new activities.
    std::vector<CompletionFn> callbacks;
    for (Act& a : acts_) {
      if (!a.done) continue;
      if (!a.uses.empty()) solve_dirty_ = true;
      rates_dirty_ = true;
      ++events_;
      callbacks.push_back(std::move(a.cb));
    }
    std::erase_if(acts_, [](const Act& a) { return a.done; });
    for (auto& cb : callbacks) {
      if (cb) cb(now_);
    }
    return true;
  }

  void solve() {
    // CSR over working activities with usage, ascending id — exactly the
    // view the SoA engine hands the shared solver.
    std::vector<std::uint32_t> off{0};
    std::vector<std::uint32_t> res;
    std::vector<double> w;
    std::vector<Act*> rows;
    for (Act& a : acts_) {
      if (!a.working || a.uses.empty()) continue;
      for (const auto& u : a.uses) {
        res.push_back(static_cast<std::uint32_t>(u.resource));
        w.push_back(u.weight);
      }
      off.push_back(static_cast<std::uint32_t>(res.size()));
      rows.push_back(&a);
    }
    if (!rows.empty()) {
      std::vector<double> rates(rows.size());
      solver_.solve(std::span<const double>(capacities_),
                    simcore::UsesView{off, res, w}, std::span<double>(rates));
      for (std::size_t i = 0; i < rows.size(); ++i) rows[i]->rate = rates[i];
    }
    solve_dirty_ = false;
  }

  std::vector<double> capacities_;
  std::vector<double> usage_;
  std::vector<Act> acts_;  ///< live activities, ascending id
  simcore::MaxMinSolver solver_;
  double now_ = 0.0;
  std::uint64_t next_id_ = 1;
  std::uint64_t events_ = 0;
  bool rates_dirty_ = false;
  bool solve_dirty_ = false;
};

// --- workload scripting --------------------------------------------------

Workload random_workload(std::uint64_t seed, int num_roots) {
  core::Rng rng(seed);
  Workload wl;
  const int R = static_cast<int>(rng.uniform_int(2, 6));
  for (int r = 0; r < R; ++r) wl.capacities.push_back(rng.uniform(1.0, 10.0));

  // Specs form a forest: roots plus up to two generations of children
  // submitted from completion callbacks.
  const auto make_spec = [&](int depth, const auto& self) -> int {
    ActSpec s;
    const std::int64_t kind = rng.uniform_int(0, 5);
    if (kind == 0) {  // pure timer
      s.delay = rng.uniform(0.01, 2.0);
    } else if (kind == 1) {  // usage-free work: completes immediately
      s.amount = rng.uniform(0.1, 2.0);
    } else if (kind == 2) {  // zero-amount work holding resources
      s.delay = rng.uniform(0.0, 1.0);
      s.uses.push_back({static_cast<std::size_t>(rng.uniform_int(0, R - 1)),
                        rng.uniform(0.1, 2.0)});
    } else {  // fluid work, possibly after a latency phase
      s.amount = rng.uniform(0.1, 5.0);
      s.delay = kind == 3 ? 0.0 : rng.uniform(0.01, 1.5);
      const int nuses = static_cast<int>(rng.uniform_int(1, 3));
      for (int u = 0; u < nuses; ++u) {
        s.uses.push_back({static_cast<std::size_t>(rng.uniform_int(0, R - 1)),
                          rng.uniform(0.1, 2.0)});
      }
    }
    const int idx = static_cast<int>(wl.specs.size());
    wl.specs.push_back(std::move(s));
    if (depth < 2) {
      const std::int64_t kids = rng.uniform_int(0, 2);
      for (std::int64_t k = 0; k < kids; ++k) {
        const int child = self(depth + 1, self);
        wl.specs[static_cast<std::size_t>(idx)].children.push_back(child);
      }
    }
    return idx;
  };
  for (int i = 0; i < num_roots; ++i) {
    wl.roots.push_back(make_spec(0, make_spec));
  }
  return wl;
}

/// Runs `wl` on either engine through a uniform submit interface.
template <typename EngineT>
struct Driver {
  EngineT& engine;
  const Workload& wl;
  std::vector<Completion> completions;

  void submit_spec(int idx) {
    const ActSpec& s = wl.specs[static_cast<std::size_t>(idx)];
    engine.submit(s.uses, s.amount, s.delay, [this, idx](double t) {
      completions.push_back({idx, t});
      for (const int child : wl.specs[static_cast<std::size_t>(idx)].children) {
        submit_spec(child);
      }
    });
  }

  void run() {
    for (const int root : wl.roots) submit_spec(root);
    engine.run();
  }
};

void expect_equivalent(std::uint64_t seed, int num_roots) {
  const Workload wl = random_workload(seed, num_roots);

  simcore::Engine soa;
  NaiveEngine naive;
  for (const double c : wl.capacities) {
    soa.add_resource(c);
    naive.add_resource(c);
  }
  Driver<simcore::Engine> ds{soa, wl, {}};
  Driver<NaiveEngine> dn{naive, wl, {}};
  ds.run();
  dn.run();

  // Exact equality throughout: same completion order, and every time and
  // usage total identical to the last bit.
  ASSERT_EQ(ds.completions.size(), dn.completions.size()) << "seed " << seed;
  for (std::size_t i = 0; i < ds.completions.size(); ++i) {
    EXPECT_EQ(ds.completions[i].spec, dn.completions[i].spec)
        << "seed " << seed << " completion " << i;
    EXPECT_EQ(ds.completions[i].t, dn.completions[i].t)
        << "seed " << seed << " completion " << i;
  }
  EXPECT_EQ(soa.now(), naive.now()) << "seed " << seed;
  EXPECT_EQ(soa.events_processed(), naive.events_processed())
      << "seed " << seed;
  for (std::size_t r = 0; r < wl.capacities.size(); ++r) {
    EXPECT_EQ(soa.resource_usage(r), naive.resource_usage(r))
        << "seed " << seed << " resource " << r;
  }
}

// --- the sweep -----------------------------------------------------------

class EngineEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineEquivalence, SoaMatchesNaiveReferenceBitForBit) {
  expect_equivalent(GetParam(), 60);
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, EngineEquivalence,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(EngineEquivalence, PaperScaleWorkload) {
  // ~1500 specs live through the run: the scale of a full Table-I
  // campaign's simulation stage in one engine instance.
  expect_equivalent(99u, 500);
}

TEST(EngineEquivalence, DeterministicAcrossRuns) {
  const Workload wl = random_workload(7u, 40);
  std::vector<Completion> first;
  for (int round = 0; round < 2; ++round) {
    simcore::Engine e;
    for (const double c : wl.capacities) e.add_resource(c);
    Driver<simcore::Engine> d{e, wl, {}};
    d.run();
    if (round == 0) {
      first = d.completions;
    } else {
      EXPECT_EQ(first, d.completions);
    }
  }
}

}  // namespace
