// mtsched command-line interface.
//
// Run `mtsched_cli` for the command list and `mtsched_cli <command>
// --help` for the options of one command — every option is declared with
// type, default and help text through core::ArgParser.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "mtsched/core/argparse.hpp"
#include "mtsched/core/table.hpp"
#include "mtsched/core/thread_pool.hpp"
#include "mtsched/dag/apps.hpp"
#include "mtsched/dag/daggen.hpp"
#include "mtsched/dag/export.hpp"
#include "mtsched/dag/generator.hpp"
#include "mtsched/exp/campaign.hpp"
#include "mtsched/exp/case_study.hpp"
#include "mtsched/exp/lab.hpp"
#include "mtsched/exp/report.hpp"
#include "mtsched/exp/results.hpp"
#include "mtsched/exp/server.hpp"
#include "mtsched/exp/service.hpp"
#include "mtsched/exp/session.hpp"
#include "mtsched/machine/table_machine.hpp"
#include "mtsched/models/factory.hpp"
#include "mtsched/obs/analysis.hpp"
#include "mtsched/obs/chrome_trace.hpp"
#include "mtsched/obs/metrics.hpp"
#include "mtsched/obs/sink.hpp"
#include "mtsched/obs/trace.hpp"
#include "mtsched/platform/parser.hpp"
#include "mtsched/platform/topology.hpp"
#include "mtsched/sched/allocation.hpp"
#include "mtsched/sched/mapping.hpp"
#include "mtsched/sim/simulator.hpp"

namespace {

using namespace mtsched;
using core::ArgParser;

struct Command {
  const char* name;
  const char* summary;
  int (*run)(int argc, char** argv);
};

[[noreturn]] void usage(const std::string& error = {});

// --- shared option groups ---------------------------------------------

void add_dag_input(ArgParser& args) {
  args.add_str("dag", "", "read the DAG from FILE (stdin when omitted)",
               "FILE");
}

void add_machine_option(ArgParser& args) {
  args.add_str("machine", "",
               "load measurement tables from FILE instead of the built-in "
               "cluster behaviour model",
               "FILE");
}

void add_model_option(ArgParser& args) {
  args.add_str("model", "profile",
               "cost model: analytical, profile or empirical", "NAME");
}

void add_platform_option(ArgParser& args) {
  args.add_str("platform", "",
               "schedule on this platform: a built-in name (bayreuth32, "
               "cray_xt4, hier1x32, hier2x16, hier4x8) or a platform file "
               "(mtsched.platform.v1 or the legacy key = value format)",
               "NAME|FILE");
}

void add_mapping_options(ArgParser& args) {
  args.add_str("mapping", "earliest",
               "list-mapping strategy: earliest, redist_aware or rack_aware",
               "NAME");
  args.add_flag("redist-aware", "deprecated alias for --mapping redist_aware");
}

sched::MappingStrategy mapping_from_args(const ArgParser& args) {
  const auto name = args.str("mapping");
  const auto strategy = sched::parse_mapping(name);
  if (!strategy) {
    throw core::InvalidArgument("unknown --mapping '" + name +
                                "' (earliest | redist_aware | rack_aware)");
  }
  // The deprecated flag only applies when --mapping was left at its
  // default; an explicit --mapping always wins.
  if (args.flag("redist-aware") && !args.given("mapping")) {
    return sched::MappingStrategy::RedistributionAware;
  }
  return *strategy;
}

std::string read_all(std::istream& is) {
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::string load_dag_text(const ArgParser& args) {
  const auto path = args.str("dag");
  if (path.empty()) {
    std::cerr << "(reading DAG from stdin)\n";
    return read_all(std::cin);
  }
  std::ifstream f(path);
  if (!f) throw core::InvalidArgument("cannot open DAG file '" + path + "'");
  return read_all(f);
}

dag::Dag load_dag(const ArgParser& args) {
  return dag::from_text(load_dag_text(args));
}

/// Resolves one --platform value: a built-in name first, a platform file
/// otherwise. Legacy-format files parse with a deprecation note on stderr.
platform::ClusterSpec resolve_platform(const std::string& value) {
  if (auto spec = platform::named_platform(value)) return *std::move(spec);
  std::ifstream f(value);
  if (!f) {
    std::string names;
    for (const auto& n : platform::named_platform_names()) {
      names += (names.empty() ? "" : ", ") + n;
    }
    throw core::InvalidArgument("unknown platform '" + value +
                                "': not a built-in name (" + names +
                                ") and not a readable file");
  }
  std::string note;
  auto spec = platform::parse_platform(read_all(f), &note);
  if (!note.empty()) std::cerr << "note: " << value << ": " << note << '\n';
  return spec;
}

/// A lab on `spec`'s platform: the built-in cluster behaviour calibrated
/// to the spec's node count and nominal speed. A 32-node spec keeps the
/// default lab's profiling plan, so flat-equivalent platforms (hier1x32)
/// reproduce default-lab outputs byte for byte.
std::unique_ptr<exp::Lab> lab_for_spec(platform::ClusterSpec spec) {
  exp::LabConfig cfg;
  cfg.machine.num_nodes = spec.num_nodes;
  cfg.machine.nominal_flops = spec.node.flops;
  if (spec.num_nodes != 32) {
    cfg.sample_plan = profiling::SamplePlan::scaled(spec.num_nodes);
  }
  auto model = std::make_unique<machine::JavaClusterModel>(cfg.machine);
  return std::make_unique<exp::Lab>(std::move(model), std::move(spec), cfg);
}

/// The --machine half of lab construction: measurement tables when given,
/// the built-in cluster behaviour otherwise.
std::unique_ptr<exp::Lab> make_machine_lab(const ArgParser& args) {
  const auto path = args.str("machine");
  if (path.empty()) return std::make_unique<exp::Lab>();
  std::ifstream f(path);
  if (!f) {
    throw core::InvalidArgument("cannot open machine file '" + path + "'");
  }
  auto tables = machine::parse_machine_tables(read_all(f));
  auto model = std::make_unique<machine::TableMachineModel>(std::move(tables));
  auto spec = platform::bayreuth32();
  spec.num_nodes = model->max_procs();
  spec.node.flops = model->nominal_flops();
  exp::LabConfig cfg;
  cfg.sample_plan = profiling::SamplePlan::scaled(model->max_procs());
  return std::make_unique<exp::Lab>(std::move(model), spec, cfg);
}

std::unique_ptr<exp::Lab> make_lab(const ArgParser& args) {
  const auto value = args.str("platform");
  if (value.empty()) return make_machine_lab(args);
  if (!args.str("machine").empty()) {
    throw core::InvalidArgument(
        "--machine and --platform are mutually exclusive");
  }
  return lab_for_spec(resolve_platform(value));
}

/// Parses, honours --help, and reports errors uniformly. Returns true
/// when the command should proceed.
bool parse_or_help(ArgParser& args, int argc, char** argv) {
  args.parse(argc, argv, 2);
  if (args.help_requested()) {
    std::cout << args.help();
    return false;
  }
  return true;
}

// --- gen-* commands -----------------------------------------------------

int cmd_gen_dag(int argc, char** argv) {
  ArgParser args("mtsched_cli gen-dag",
                 "Generate a Table I style random DAG (text to stdout).");
  args.add_int("tasks", 10, "total number of tasks");
  args.add_int("width", 4, "number of input matrices (DAG width)");
  args.add_double("ratio", 0.5, "fraction of addition tasks");
  args.add_int("dim", 2000, "matrix dimension n");
  args.add_uint64("seed", 1, "generator seed");
  args.add_flag("dot", "emit Graphviz DOT instead of the text format");
  if (!parse_or_help(args, argc, argv)) return 0;

  dag::DagGenParams p;
  p.num_tasks = static_cast<int>(args.integer("tasks"));
  p.width = static_cast<int>(args.integer("width"));
  p.add_ratio = args.number("ratio");
  p.matrix_dim = static_cast<int>(args.integer("dim"));
  p.seed = args.uint64("seed");
  const auto inst = dag::generate_random_dag(p);
  std::cout << (args.flag("dot") ? dag::to_dot(inst.graph, "dag")
                                 : dag::to_text(inst.graph));
  return 0;
}

int cmd_gen_daggen(int argc, char** argv) {
  ArgParser args("mtsched_cli gen-daggen",
                 "Generate a DAGGEN-style layered random DAG.");
  args.add_int("tasks", 20, "total number of tasks");
  args.add_double("fat", 0.5, "width of the DAG (0 = chain, 1 = wide)");
  args.add_double("density", 0.5, "edge density between layers");
  args.add_double("regularity", 0.5, "regularity of layer sizes");
  args.add_int("jump", 2, "maximum level distance an edge may span");
  args.add_double("ratio", 0.5, "fraction of addition tasks");
  args.add_int("dim", 2000, "matrix dimension n");
  args.add_uint64("seed", 1, "generator seed");
  args.add_flag("dot", "emit Graphviz DOT instead of the text format");
  if (!parse_or_help(args, argc, argv)) return 0;

  dag::DaggenParams p;
  p.num_tasks = static_cast<int>(args.integer("tasks"));
  p.fat = args.number("fat");
  p.density = args.number("density");
  p.regularity = args.number("regularity");
  p.jump = static_cast<int>(args.integer("jump"));
  p.add_ratio = args.number("ratio");
  p.matrix_dim = static_cast<int>(args.integer("dim"));
  p.seed = args.uint64("seed");
  const auto g = dag::generate_daggen(p);
  std::cout << (args.flag("dot") ? dag::to_dot(g, "dag") : dag::to_text(g));
  return 0;
}

int cmd_gen_strassen(int argc, char** argv) {
  ArgParser args("mtsched_cli gen-strassen",
                 "Generate a Strassen matrix-multiplication DAG.");
  args.add_int("dim", 2000, "matrix dimension n");
  args.add_int("levels", 1, "recursion levels");
  args.add_flag("dot", "emit Graphviz DOT instead of the text format");
  if (!parse_or_help(args, argc, argv)) return 0;

  const auto g = dag::strassen_dag(static_cast<int>(args.integer("dim")),
                                   static_cast<int>(args.integer("levels")));
  std::cout << (args.flag("dot") ? dag::to_dot(g, "strassen")
                                 : dag::to_text(g));
  return 0;
}

int cmd_gen_lu(int argc, char** argv) {
  ArgParser args("mtsched_cli gen-lu",
                 "Generate a blocked LU factorization DAG.");
  args.add_int("blocks", 4, "blocks per matrix dimension");
  args.add_int("dim", 1000, "matrix dimension n");
  args.add_flag("dot", "emit Graphviz DOT instead of the text format");
  if (!parse_or_help(args, argc, argv)) return 0;

  const auto g = dag::block_lu_dag(static_cast<int>(args.integer("blocks")),
                                   static_cast<int>(args.integer("dim")));
  std::cout << (args.flag("dot") ? dag::to_dot(g, "lu") : dag::to_text(g));
  return 0;
}

// --- observability ------------------------------------------------------

void add_obs_options(ArgParser& args) {
  args.add_str("trace", "",
               "write a Chrome trace_event JSON (chrome://tracing, "
               "Perfetto) to FILE",
               "FILE");
  args.add_flag("trace-normalize",
                "replace trace timestamps with per-track event ordinals "
                "(byte-identical across runs; for diffing)");
  args.add_flag("metrics", "print the metrics registry after the run");
  args.add_uint64("trace-cap", 0,
                  "keep at most N trace events; drops are counted in the "
                  "trace.dropped_events metric (0 = unbounded)",
                  "N");
  args.add_flag("trace-stream",
                "stream trace events to the --trace file as they are "
                "emitted instead of buffering the whole trace in memory "
                "(for very large runs; makes --trace-cap unnecessary)");
  args.add_uint64("trace-ring", 4096,
                  "per-track ring buffer capacity used with --trace-stream",
                  "N");
}

/// Applies --trace-cap before any events are emitted.
void apply_trace_cap(const ArgParser& args, obs::Tracer& tracer,
                     obs::MetricsRegistry* metrics) {
  const auto cap = args.uint64("trace-cap");
  if (cap > 0) {
    tracer.set_event_cap(static_cast<std::size_t>(cap), metrics);
  }
}

void write_trace_file(const ArgParser& args, const obs::Tracer& tracer) {
  const std::string& path = args.str("trace");
  obs::ChromeTraceOptions opt;
  opt.normalize_timestamps = args.flag("trace-normalize");
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    throw core::InvalidArgument("cannot open --trace file '" + path + "'");
  }
  f << obs::to_chrome_json(tracer, opt);
}

/// Streaming trace pipeline: with --trace-stream, the --trace file is
/// opened up front and a ChromeStreamWriter is attached to the tracer, so
/// events hit disk as the run produces them and memory stays bounded by
/// the ring buffers. Inactive (and write_trace_file applies) otherwise.
class TraceStream {
 public:
  TraceStream(const ArgParser& args, obs::Tracer& tracer) : tracer_(tracer) {
    if (args.str("trace").empty() || !args.flag("trace-stream")) return;
    const auto ring = args.uint64("trace-ring");
    if (ring == 0) {
      throw core::InvalidArgument("--trace-ring must be at least 1");
    }
    file_.open(args.str("trace"), std::ios::binary);
    if (!file_) {
      throw core::InvalidArgument("cannot open --trace file '" +
                                  args.str("trace") + "'");
    }
    obs::ChromeTraceOptions opt;
    opt.normalize_timestamps = args.flag("trace-normalize");
    writer_.emplace(file_, opt);
    tracer.set_stream(&*writer_, static_cast<std::size_t>(ring));
  }

  bool active() const { return writer_.has_value(); }

  /// Flushes the buffered tails and terminates the document.
  void finish() {
    if (!writer_) return;
    tracer_.flush_stream();
    writer_->finish(tracer_.dropped_events());
  }

 private:
  obs::Tracer& tracer_;
  std::ofstream file_;
  std::optional<obs::ChromeStreamWriter> writer_;
};

// --- schedule / run -----------------------------------------------------

sched::Schedule compute_schedule(const dag::Dag& g, const exp::Lab& lab,
                                 const ArgParser& args) {
  const auto algo = sched::make_allocator(args.str("algo"));
  const models::SchedCostAdapter cost(
      lab.model(models::ModelSpec::parse(args.str("model"))));
  const auto strategy = mapping_from_args(args);
  const auto alloc = algo->allocate(g, cost, lab.spec().num_nodes);
  return sched::ListMapper(strategy, lab.spec())
      .map(g, alloc, cost, lab.spec().num_nodes);
}

void add_schedule_options(ArgParser& args) {
  args.add_str("algo", "HCPA",
               "allocation algorithm: CPA, HCPA, MCPA, SEQ or MAXPAR",
               "NAME");
  add_model_option(args);
  add_mapping_options(args);
  add_dag_input(args);
  add_machine_option(args);
  add_platform_option(args);
}

int cmd_schedule(int argc, char** argv) {
  ArgParser args("mtsched_cli schedule",
                 "Compute a schedule for a DAG and print the placement "
                 "table.");
  add_schedule_options(args);
  if (!parse_or_help(args, argc, argv)) return 0;

  const auto g = load_dag(args);
  const auto lab = make_lab(args);
  const auto s = compute_schedule(g, *lab, args);
  core::TextTable t;
  t.set_header({"task", "kernel", "procs", "est start", "est finish"});
  for (dag::TaskId id = 0; id < g.num_tasks(); ++id) {
    std::string procs;
    for (std::size_t i = 0; i < s.placements[id].procs.size(); ++i) {
      procs += (i ? "," : "") + std::to_string(s.placements[id].procs[i]);
    }
    t.add_row({g.task(id).name, dag::kernel_name(g.task(id).kernel), procs,
               core::fmt(s.placements[id].est_start, 2),
               core::fmt(s.placements[id].est_finish, 2)});
  }
  std::cout << t.render();
  std::cout << "estimated makespan: " << core::fmt(s.est_makespan, 2)
            << " s\n";
  return 0;
}

/// Builds the session-layer request from the shared schedule options.
exp::ScheduleRequest request_from_args(const ArgParser& args) {
  exp::ScheduleRequest req;
  req.dag_text = load_dag_text(args);
  req.algorithm = args.str("algo");
  req.mapping = mapping_from_args(args);
  req.model = models::ModelSpec::parse(args.str("model"));
  req.exp_seed = args.uint64("exp-seed");
  return req;
}

/// The standard run report, printed identically by `run` (local session)
/// and `request` (over the rpc service): the byte-identity contract
/// between the two rests on rendering the same ScheduleResponse fields.
void print_run_report(const exp::ScheduleResponse& resp) {
  std::cout << "scheduler estimate: " << core::fmt(resp.est_makespan, 2)
            << " s\n"
            << "simulated makespan: " << core::fmt(resp.makespan_sim, 2)
            << " s (" << resp.model << " model)\n"
            << "measured makespan:  " << core::fmt(resp.makespan_exp, 2)
            << " s (seed " << resp.exp_seed << ")\n"
            << "simulation error:   "
            << core::fmt(std::abs(resp.makespan_exp - resp.makespan_sim) /
                             resp.makespan_sim * 100.0,
                         1)
            << " % of the simulated value\n";
}

int cmd_run(int argc, char** argv) {
  ArgParser args("mtsched_cli run",
                 "Schedule one DAG, simulate it and execute it on the "
                 "emulated cluster.");
  add_schedule_options(args);
  args.add_uint64("exp-seed", 42, "experiment seed (cluster weather)");
  args.add_flag("gantt", "print the experimental timeline");
  add_obs_options(args);
  if (!parse_or_help(args, argc, argv)) return 0;

  const auto req = request_from_args(args);
  const auto lab = make_lab(args);
  const exp::Session session(*lab);

  // Route the scheduling, simulation and emulated-execution layers'
  // events to one tracer/registry via the ambient obs context.
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  apply_trace_cap(args, tracer, args.flag("metrics") ? &metrics : nullptr);
  const bool tracing = !args.str("trace").empty();
  TraceStream stream(args, tracer);
  std::optional<obs::ScopedContext> obs_ctx;
  if (tracing || args.flag("metrics")) {
    obs_ctx.emplace(tracing ? tracer.root() : obs::Track{},
                    args.flag("metrics") ? &metrics : nullptr);
  }

  exp::RunArtifacts artifacts;
  const auto resp = session.run(req, &artifacts);
  obs_ctx.reset();
  if (stream.active()) {
    stream.finish();
  } else if (tracing) {
    write_trace_file(args, tracer);
  }
  // Surface request-level failures exactly like the pre-session CLI:
  // as an error on stderr with exit status 1.
  if (!resp.ok()) throw core::Error(resp.message);
  print_run_report(resp);
  if (args.flag("metrics")) {
    std::cout << '\n' << metrics.render();
  }
  if (args.flag("gantt")) {
    const auto g = dag::from_text(req.dag_text);
    std::vector<std::vector<int>> procs;
    for (const auto& pl : artifacts.schedule.placements) {
      procs.push_back(pl.procs);
    }
    std::cout << "\nexperimental timeline:\n"
              << artifacts.exp_trace.ascii_gantt(g, procs,
                                                 lab->spec().num_nodes);
  }
  return 0;
}

// --- serve / request ----------------------------------------------------

int cmd_serve(int argc, char** argv) {
  ArgParser args(
      "mtsched_cli serve",
      "Run the scheduling daemon: accept mtsched.rpc.v1 requests on a "
      "loopback socket and serve them through a shared session (worker "
      "pool, schedule cache, admission control). Stops on a shutdown "
      "request (`mtsched_cli request --shutdown`).");
  args.add_int("port", 0,
               "listen port on 127.0.0.1 (0 = pick an ephemeral port; the "
               "bound port is printed on startup)");
  args.add_int("threads", 0, "worker threads (0 = one per hardware thread)");
  args.add_int("queue-limit", 64,
               "maximum requests in flight; beyond this requests are "
               "rejected with status 429");
  args.add_flag("metrics", "print the metrics registry on shutdown");
  add_machine_option(args);
  args.add_str("platform", "",
               "comma-separated extra platforms to register with the "
               "session (built-in names or platform files); requests "
               "select them by platform name",
               "LIST");
  if (!parse_or_help(args, argc, argv)) return 0;

  const auto lab = make_machine_lab(args);
  // Every registered platform gets its own fully wired lab; they must
  // outlive the service, so they are declared before it.
  std::vector<std::unique_ptr<exp::Lab>> platform_labs;
  for (const auto& entry : core::split_csv(args.str("platform"))) {
    platform_labs.push_back(lab_for_spec(resolve_platform(entry)));
  }
  obs::MetricsRegistry metrics;
  obs::BasicSink sink(nullptr, args.flag("metrics") ? &metrics : nullptr);

  exp::ServiceConfig cfg;
  cfg.threads = static_cast<int>(args.integer("threads"));
  cfg.queue_limit = static_cast<std::size_t>(
      std::max<std::int64_t>(1, args.integer("queue-limit")));
  exp::Service service(*lab, cfg, &sink);
  for (const auto& extra : platform_labs) service.add_platform(*extra);

  exp::RpcServerConfig server_cfg;
  server_cfg.port = static_cast<std::uint16_t>(args.integer("port"));
  exp::RpcServer server(service, server_cfg);
  // One flushed line with the bound port so scripts can scrape it.
  std::cout << "mtsched serve: listening on 127.0.0.1:" << server.port()
            << " (" << service.threads() << " worker thread"
            << (service.threads() == 1 ? "" : "s") << ", queue limit "
            << service.queue_limit() << ")" << std::endl;
  if (!platform_labs.empty()) {
    std::cout << "mtsched serve: platforms: " << lab->spec().name
              << " (default)";
    for (const auto& extra : platform_labs) {
      std::cout << ", " << extra->spec().name;
    }
    std::cout << std::endl;
  }
  server.serve();
  const auto stats = server.stats();
  std::cout << "mtsched serve: shut down after " << stats.requests
            << " requests on " << stats.connections << " connections ("
            << stats.rejected << " rejected, " << stats.protocol_errors
            << " protocol errors)\n"
            << "mtsched serve: " << stats.batched_requests
            << " requests in " << stats.batches
            << " micro-batches (largest " << stats.max_batch << "), "
            << stats.backpressure_pauses << " backpressure pauses\n";
  if (args.flag("metrics")) std::cout << metrics.render();
  return 0;
}

int cmd_request(int argc, char** argv) {
  ArgParser args(
      "mtsched_cli request",
      "Send one scheduling request to a running `mtsched_cli serve` "
      "daemon and print the standard run report (byte-identical to a "
      "local `run` against the same machine model).");
  args.add_str("host", "127.0.0.1", "daemon host", "HOST");
  args.add_int("port", 0, "daemon port (required; see the serve startup "
               "line)");
  args.add_str("algo", "HCPA",
               "allocation algorithm: CPA, HCPA, MCPA, SEQ or MAXPAR",
               "NAME");
  add_model_option(args);
  add_mapping_options(args);
  args.add_str("platform", "",
               "schedule on this platform registered at the daemon "
               "(empty = the daemon's default)",
               "NAME");
  add_dag_input(args);
  args.add_uint64("exp-seed", 42, "experiment seed (cluster weather)");
  args.add_int("count", 1,
               "number of schedule requests to send; request i uses "
               "exp-seed + i and the reports print in request order");
  args.add_int("pipeline", 1,
               "requests kept in flight on the connection before reading "
               "responses (1 = strict request/response round trips; "
               "clamped to the server's per-connection in-flight budget)");
  args.add_flag("ping", "probe daemon liveness instead of scheduling");
  args.add_flag("shutdown",
                "ask the daemon to shut down instead of scheduling");
  if (!parse_or_help(args, argc, argv)) return 0;

  const auto port = args.integer("port");
  if (port <= 0 || port > 65535) {
    throw core::InvalidArgument(
        "--port is required (the daemon prints its port on startup)");
  }
  exp::RpcClient client(args.str("host"), static_cast<std::uint16_t>(port));
  if (args.flag("ping")) {
    const auto resp = client.ping();
    std::cout << resp.message << '\n';
    return resp.ok() ? 0 : 1;
  }
  if (args.flag("shutdown")) {
    const auto resp = client.request_shutdown();
    std::cout << resp.message << '\n';
    return resp.ok() ? 0 : 1;
  }
  auto req = request_from_args(args);
  req.platform = args.str("platform");
  const auto count =
      static_cast<std::size_t>(std::max<std::int64_t>(1, args.integer("count")));
  // The server parks reads on a connection once max_conn_inflight
  // responses are owed; a window beyond that budget would leave this
  // client blocked in send() against a server that has stopped reading.
  const auto window = std::min(
      exp::RpcServerConfig{}.max_conn_inflight,
      static_cast<std::size_t>(
          std::max<std::int64_t>(1, args.integer("pipeline"))));
  const std::uint64_t seed0 = req.exp_seed;
  // Sliding window of pipelined requests: keep up to `window` in flight,
  // print each response as it comes back (the server answers in request
  // order, so the reports line up with the seeds).
  std::size_t sent = 0;
  std::size_t received = 0;
  const auto consume_one = [&] {
    const auto resp = client.recv();
    if (!resp.ok()) {
      throw core::Error(std::string(exp::status_name(resp.status)) + ": " +
                        resp.message);
    }
    print_run_report(resp);
    ++received;
  };
  while (received < count) {
    while (sent < count && sent - received < window) {
      // Drain responses the server already delivered before blocking in
      // send(): unread responses fill the kernel buffers, feed the
      // server's write backpressure and can stall the whole window.
      while (received < sent && client.response_ready()) consume_one();
      req.exp_seed = seed0 + sent;
      client.send(req);
      ++sent;
    }
    consume_one();
  }
  return 0;
}

// --- case-study / campaign ----------------------------------------------

int cmd_case_study(int argc, char** argv) {
  ArgParser args("mtsched_cli case-study",
                 "The paper's HCPA-vs-MCPA comparison: verdict-flip counts "
                 "per cost model for one matrix dimension.");
  args.add_int("dim", 2000, "matrix dimension to report (2000 or 3000)");
  args.add_uint64("exp-seed", 42, "experiment seed (cluster weather)");
  add_machine_option(args);
  add_platform_option(args);
  if (!parse_or_help(args, argc, argv)) return 0;

  const auto lab = make_lab(args);
  const auto suite = dag::generate_table1_suite();
  const int dim = static_cast<int>(args.integer("dim"));
  const auto exp_seed = args.uint64("exp-seed");
  for (const auto kind : models::all_kinds()) {
    const exp::CaseStudy study(lab->model(kind), lab->rig());
    const auto result = study.run_suite(suite, exp_seed);
    const auto subset = result.with_dim(dim);
    std::cout << result.model_name << " model, n = " << dim << ": "
              << exp::count_flips(subset) << "/" << subset.size()
              << " verdict flips\n";
  }
  return 0;
}

int cmd_campaign(int argc, char** argv) {
  ArgParser args(
      "mtsched_cli campaign",
      "Run a full experiment campaign (suites x algorithms x models x "
      "seeds) on a worker pool and emit structured results. The output "
      "is byte-identical for every --threads value.");
  args.add_int("threads", core::ThreadPool::recommended_threads(),
               "worker threads (0 = one per hardware thread)");
  args.add_str("models", "analytical,profile,empirical",
               "comma-separated cost models to sweep", "LIST");
  args.add_str("algos", "HCPA,MCPA",
               "comma-separated allocation algorithms (CPA, HCPA, MCPA, "
               "SEQ, MAXPAR)",
               "LIST");
  args.add_str("dims", "", "keep only these matrix dimensions (e.g. "
               "2000,3000); empty = all", "LIST");
  args.add_str("suite-seeds", "2011",
               "comma-separated Table I suite seeds, one 54-DAG suite each",
               "LIST");
  args.add_int("suite-tasks", 10,
               "tasks per generated DAG in every suite (paper value: 10)");
  args.add_str("exp-seeds", "42",
               "comma-separated experiment seeds (cluster weather)", "LIST");
  args.add_str("out", "", "write the JSON document to FILE ('-' = stdout)",
               "FILE");
  args.add_str("csv", "", "also write the flat CSV to FILE ('-' = stdout)",
               "FILE");
  args.add_flag("progress", "report progress on stderr while running");
  args.add_flag("quiet", "suppress the summary tables on stdout");
  add_obs_options(args);
  add_machine_option(args);
  add_platform_option(args);
  add_mapping_options(args);
  if (!parse_or_help(args, argc, argv)) return 0;

  const auto lab = make_lab(args);
  const auto strategy = mapping_from_args(args);

  const auto suite_tasks = static_cast<int>(args.integer("suite-tasks"));
  if (suite_tasks < 1)
    throw core::InvalidArgument("--suite-tasks must be >= 1");

  exp::CampaignSpec spec;
  for (const auto seed :
       core::split_csv_uint64(args.str("suite-seeds"), "--suite-seeds")) {
    spec.suites.push_back(exp::SuiteSpec::table1(seed, suite_tasks));
  }
  for (const auto& name : core::split_csv(args.str("algos"))) {
    spec.algorithms.push_back(
        exp::AlgoSpec::allocator(name, strategy, lab->spec()));
  }
  spec.models = exp::lab_models(*lab, models::parse_kind_list(args.str("models")));
  spec.dims = core::split_csv_int(args.str("dims"), "--dims");
  spec.exp_seeds = core::split_csv_uint64(args.str("exp-seeds"), "--exp-seeds");
  spec.threads = static_cast<int>(args.integer("threads"));

  obs::BasicSink::ProgressCallback on_progress;
  if (args.flag("progress")) {
    on_progress = [](const obs::Progress& p) {
      if (p.done % 50 == 0 || p.done == p.total) {
        std::cerr << "  [" << p.done << "/" << p.total << "] "
                  << core::fmt(p.elapsed_seconds, 2) << " s elapsed\n";
      }
    };
  }
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  apply_trace_cap(args, tracer, args.flag("metrics") ? &metrics : nullptr);
  const bool tracing = !args.str("trace").empty();
  TraceStream stream(args, tracer);
  obs::BasicSink sink(tracing ? &tracer : nullptr,
                      args.flag("metrics") ? &metrics : nullptr,
                      std::move(on_progress));
  const bool observed =
      tracing || args.flag("metrics") || args.flag("progress");

  const exp::Campaign campaign(lab->rig());
  const auto result = campaign.run(spec, observed ? &sink : nullptr);
  if (stream.active()) {
    stream.finish();
  } else if (tracing) {
    write_trace_file(args, tracer);
  }

  const auto write_doc = [](const std::string& path, const std::string& doc,
                            const char* what) {
    if (path == "-") {
      std::cout << doc;
      return;
    }
    std::ofstream f(path, std::ios::binary);
    if (!f) {
      throw core::InvalidArgument(std::string("cannot open ") + what +
                                  " file '" + path + "'");
    }
    f << doc;
  };
  if (!args.str("out").empty()) {
    write_doc(args.str("out"), exp::to_json(spec, result), "--out");
  }
  if (!args.str("csv").empty()) {
    write_doc(args.str("csv"), exp::to_csv(result.records), "--csv");
  }

  if (!args.flag("quiet")) {
    // Verdict-flip summary per (model, suite, exp seed) when the sweep
    // pairs exactly two algorithms — the paper's headline table.
    if (spec.algorithms.size() == 2) {
      core::TextTable t;
      t.set_header({"model", "suite seed", "exp seed", "flips", "of"});
      for (const auto& model : spec.models) {
        for (const auto& suite : spec.suites) {
          for (const auto exp_seed : spec.exp_seeds) {
            const auto cs = result.case_study(
                model.label, spec.algorithms[0].label,
                spec.algorithms[1].label, suite.seed, exp_seed);
            t.add_row({model.label, std::to_string(suite.seed),
                       std::to_string(exp_seed),
                       std::to_string(cs.num_flips()),
                       std::to_string(cs.outcomes.size())});
          }
        }
      }
      std::cout << t.render();
    }
    std::cout << result.metrics.describe();
  }
  if (args.flag("metrics")) {
    std::cout << metrics.render();
  }
  return 0;
}

int cmd_export_machine(int argc, char** argv) {
  ArgParser args("mtsched_cli export-machine",
                 "Dump the built-in cluster behaviour as measurement "
                 "tables (loadable via --machine).");
  if (!parse_or_help(args, argc, argv)) return 0;

  const machine::JavaClusterModel java;
  const auto tables = machine::snapshot_tables(
      java, {{dag::TaskKernel::MatMul, 2000},
             {dag::TaskKernel::MatMul, 3000},
             {dag::TaskKernel::MatAdd, 2000},
             {dag::TaskKernel::MatAdd, 3000}});
  std::cout << machine::to_text(tables);
  return 0;
}

// --- trace analytics ----------------------------------------------------

obs::TraceProfile load_profile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    throw core::InvalidArgument("cannot open trace file '" + path + "'");
  }
  return obs::TraceProfile::from_chrome(obs::parse_chrome_json(read_all(f)));
}

int cmd_trace_report(int argc, char** argv) {
  ArgParser args("mtsched_cli trace-report",
                 "Profile a Chrome trace_event JSON file: per-category and "
                 "per-span self/total attribution plus the critical path.");
  args.add_positional("file", "trace file (as written by --trace)", "FILE");
  args.add_int("top", 20, "span rows to print (0 = all)");
  if (!parse_or_help(args, argc, argv)) return 0;

  const auto profile = load_profile(args.str("file"));
  std::cout << obs::render_profile(
      profile, static_cast<std::size_t>(std::max<std::int64_t>(
                   0, args.integer("top"))));
  return 0;
}

int cmd_trace_diff(int argc, char** argv) {
  ArgParser args(
      "mtsched_cli trace-diff",
      "Compare two Chrome trace files span by span and flag the "
      "(category, name) pairs whose total time moved beyond the "
      "threshold. Useful with --trace-normalize'd traces, where times "
      "are event counts and the diff is structural.");
  args.add_positional("a", "baseline trace file", "A");
  args.add_positional("b", "candidate trace file", "B");
  args.add_double("threshold", 10.0,
                  "relative change (percent) beyond which a span pair is "
                  "flagged",
                  "PCT");
  args.add_double("abs-threshold", 0.0,
                  "ignore changes smaller than this many seconds",
                  "SECONDS");
  args.add_int("top", 30, "per-pair rows to print (0 = all)");
  args.add_flag("gate", "exit with status 1 when any pair is flagged");
  if (!parse_or_help(args, argc, argv)) return 0;

  obs::TraceDiffOptions opt;
  opt.rel_threshold = args.number("threshold") / 100.0;
  opt.abs_threshold_seconds = args.number("abs-threshold");
  const auto diff =
      obs::TraceDiff::between(load_profile(args.str("a")),
                              load_profile(args.str("b")), opt);
  std::cout << obs::render_diff(
      diff, static_cast<std::size_t>(std::max<std::int64_t>(
                0, args.integer("top"))));
  return args.flag("gate") && !diff.flagged.empty() ? 1 : 0;
}

constexpr Command kCommands[] = {
    {"gen-dag", "generate a Table I style random DAG", cmd_gen_dag},
    {"gen-daggen", "generate a DAGGEN-style layered DAG", cmd_gen_daggen},
    {"gen-strassen", "generate a Strassen multiplication DAG",
     cmd_gen_strassen},
    {"gen-lu", "generate a blocked LU factorization DAG", cmd_gen_lu},
    {"schedule", "compute a schedule for a DAG", cmd_schedule},
    {"run", "schedule + simulate + execute one DAG", cmd_run},
    {"serve", "scheduling daemon over the mtsched.rpc.v1 protocol",
     cmd_serve},
    {"request", "send one request to a running serve daemon", cmd_request},
    {"case-study", "the paper's full HCPA-vs-MCPA comparison",
     cmd_case_study},
    {"campaign", "parallel experiment campaign with JSON/CSV output",
     cmd_campaign},
    {"export-machine", "dump the built-in cluster measurement tables",
     cmd_export_machine},
    {"trace-report", "profile a trace: attribution + critical path",
     cmd_trace_report},
    {"trace-diff", "compare two traces and flag perf regressions",
     cmd_trace_diff},
};

[[noreturn]] void usage(const std::string& error) {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage: mtsched_cli <command> [options]\ncommands:\n";
  for (const auto& cmd : kCommands) {
    std::string lhs = std::string("  ") + cmd.name;
    if (lhs.size() < 17) lhs += std::string(17 - lhs.size(), ' ');
    std::cerr << lhs << cmd.summary << '\n';
  }
  std::cerr << "run 'mtsched_cli <command> --help' for that command's "
               "options\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") usage();
  try {
    for (const auto& c : kCommands) {
      if (cmd == c.name) return c.run(argc, argv);
    }
    usage("unknown command '" + cmd + "'");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
