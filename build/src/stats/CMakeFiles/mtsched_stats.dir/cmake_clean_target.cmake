file(REMOVE_RECURSE
  "libmtsched_stats.a"
)
