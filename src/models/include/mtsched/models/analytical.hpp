// The purely analytical cost model (paper Section IV).
//
// Execution: each of the p processors performs flops(kernel, n)/p floating
// point operations. The 1-D parallel matrix multiplication additionally
// exchanges one local column block (n^2/p elements) per step for p - 1
// steps, modelled as a ring communication pattern in the parallel task's
// byte matrix. Matrix additions perform no communication.
//
// No startup overhead and no redistribution protocol overhead exist in
// this model — precisely the omissions the paper shows to be fatal.
#pragma once

#include "mtsched/models/cost_model.hpp"

namespace mtsched::models {

class AnalyticalModel final : public CostModel {
 public:
  explicit AnalyticalModel(platform::ClusterSpec spec);

  CostModelKind kind() const override { return CostModelKind::Analytical; }

  TaskSimCost task_sim_cost(const dag::Task& t, int p) const override;
  double redist_overhead(int p_src, int p_dst) const override;
  double exec_estimate(const dag::Task& t, int p) const override;
  double startup_estimate(int p) const override;

  /// Bytes each rank forwards around the ring during a 1-D multiplication
  /// on p processors ((p-1) * n^2/p elements); 0 for additions or p = 1.
  static double ring_bytes(dag::TaskKernel k, int n, int p);
};

}  // namespace mtsched::models
