#include "mtsched/tgrid/emulator.hpp"

#include <algorithm>
#include <vector>

#include "mtsched/core/error.hpp"
#include "mtsched/core/rng.hpp"
#include "mtsched/obs/trace.hpp"
#include "mtsched/redist/plan.hpp"
#include "mtsched/simcore/cluster_sim.hpp"
#include "mtsched/simcore/engine.hpp"
#include "mtsched/simcore/fifo.hpp"

namespace mtsched::tgrid {

namespace {

/// Noise streams: samples are bound to entities (task/edge ids), not to
/// event order, so the "weather" of a given seed is stable.
enum class Stream : std::uint64_t { Startup = 1, Exec = 2, Redist = 3 };

core::Rng entity_rng(std::uint64_t seed, Stream s, std::uint64_t entity) {
  return core::Rng(
      core::hash_mix(seed, static_cast<std::uint64_t>(s), entity));
}

struct EmuState {
  const dag::Dag* g = nullptr;
  const sched::Schedule* s = nullptr;
  const machine::MachineModel* machine = nullptr;
  simcore::Engine* engine = nullptr;
  simcore::ClusterSim* cluster = nullptr;
  simcore::FifoServer* subnet = nullptr;
  sched::RunTrace* trace = nullptr;
  std::uint64_t seed = 0;

  std::vector<int> order_preds_left;
  std::vector<int> edges_left;
  std::vector<bool> spawned;      ///< startup submitted
  std::vector<bool> containers_up;
  std::vector<bool> computing;
  std::vector<bool> producer_done;  ///< per edge index
  std::vector<std::vector<std::size_t>> out_edge_index;
  std::vector<std::vector<std::size_t>> in_edge_index;
  std::vector<std::vector<dag::TaskId>> order_succs;

  void maybe_spawn(dag::TaskId t);
  void on_containers_up(dag::TaskId t, double now);
  void maybe_register_edge(std::size_t edge_idx);
  void maybe_compute(dag::TaskId t);
  void on_task_done(dag::TaskId t, double now);
};

void EmuState::maybe_spawn(dag::TaskId t) {
  if (spawned[t] || order_preds_left[t] > 0) return;
  spawned[t] = true;
  const int p = static_cast<int>(s->placement(t).procs.size());
  auto rng = entity_rng(seed, Stream::Startup, t);
  const double startup = machine->startup_sample(p, rng);
  (*trace).tasks[t].startup_begin = engine->now();
  engine->submit_timer(
      startup, [this, t](double now) { on_containers_up(t, now); },
      "startup_" + g->task(t).name);
}

void EmuState::on_containers_up(dag::TaskId t, double now) {
  (void)now;
  containers_up[t] = true;
  for (std::size_t e : in_edge_index[t]) maybe_register_edge(e);
  maybe_compute(t);
}

void EmuState::maybe_register_edge(std::size_t edge_idx) {
  const auto& e = g->edges()[edge_idx];
  // Registration requires both sides: the producer's data must exist and
  // the consumer's containers must be running to register with the subnet
  // manager.
  if (!producer_done[edge_idx] || !containers_up[e.dst]) return;

  auto& span = (*trace).edges[edge_idx];
  span.request = engine->now();

  const int p_src = static_cast<int>(s->placement(e.src).procs.size());
  const int p_dst = static_cast<int>(s->placement(e.dst).procs.size());
  auto rng = entity_rng(seed, Stream::Redist, edge_idx);
  const double service = machine->redist_overhead_sample(p_src, p_dst, rng);

  subnet->enqueue(service, [this, edge_idx](double when) {
    auto& sp = (*trace).edges[edge_idx];
    sp.transfer = when;
    const auto& edge = g->edges()[edge_idx];
    const auto& spl = s->placement(edge.src);
    const auto& dpl = s->placement(edge.dst);
    const auto plan = redist::plan_block_redistribution(
        g->task(edge.src).matrix_dim, static_cast<int>(spl.procs.size()),
        static_cast<int>(dpl.procs.size()));
    auto pt = simcore::make_redistribution_ptask(
        spl.procs, dpl.procs, plan.bytes,
        "redist_" + std::to_string(edge.src) + "_" + std::to_string(edge.dst));
    cluster->submit_ptask(pt, [this, edge_idx](double done_at) {
      (*trace).edges[edge_idx].done = done_at;
      const dag::TaskId dst = g->edges()[edge_idx].dst;
      --edges_left[dst];
      maybe_compute(dst);
    });
  });
}

void EmuState::maybe_compute(dag::TaskId t) {
  if (computing[t] || !containers_up[t] || edges_left[t] > 0) return;
  computing[t] = true;
  const auto& task = g->task(t);
  const int p = static_cast<int>(s->placement(t).procs.size());
  auto rng = entity_rng(seed, Stream::Exec, t);
  // Heterogeneous sets run at the pace of their slowest member.
  const double exec =
      machine->exec_time_sample(task.kernel, task.matrix_dim, p, rng) *
      platform::exec_slowdown(cluster->spec(), s->placement(t).procs);
  (*trace).tasks[t].exec_begin = engine->now();
  engine->submit_timer(
      exec, [this, t](double now) { on_task_done(t, now); },
      "exec_" + task.name);
}

void EmuState::on_task_done(dag::TaskId t, double now) {
  (*trace).tasks[t].finish = now;
  trace->makespan = std::max(trace->makespan, now);
  for (dag::TaskId u : order_succs[t]) {
    --order_preds_left[u];
    maybe_spawn(u);
  }
  for (std::size_t e : out_edge_index[t]) {
    producer_done[e] = true;
    maybe_register_edge(e);
  }
}

}  // namespace

TGridEmulator::TGridEmulator(const machine::MachineModel& machine,
                             platform::ClusterSpec spec)
    : machine_(machine), spec_(std::move(spec)) {
  spec_.validate();
  MTSCHED_REQUIRE(spec_.num_nodes == machine_.max_procs(),
                  "platform node count must match the machine model");
}

sched::RunTrace TGridEmulator::run(const dag::Dag& g, const sched::Schedule& s,
                                   std::uint64_t seed) const {
  sched::validate_schedule(g, s, spec_.num_nodes);

  const obs::Span obs_span(obs::current_track(), "tgrid", "execute",
                           {{"tasks", std::to_string(g.num_tasks())},
                            {"seed", std::to_string(seed)}});

  simcore::Engine engine;
  simcore::ClusterSim cluster(engine, spec_);
  simcore::FifoServer subnet(engine, "subnet_manager");

  sched::RunTrace trace;
  trace.tasks.resize(g.num_tasks());
  trace.edges.resize(g.num_edges());
  for (std::size_t i = 0; i < g.num_edges(); ++i) {
    trace.edges[i].src = g.edges()[i].src;
    trace.edges[i].dst = g.edges()[i].dst;
  }

  EmuState st;
  st.g = &g;
  st.s = &s;
  st.machine = &machine_;
  st.engine = &engine;
  st.cluster = &cluster;
  st.subnet = &subnet;
  st.trace = &trace;
  st.seed = seed;
  st.spawned.assign(g.num_tasks(), false);
  st.containers_up.assign(g.num_tasks(), false);
  st.computing.assign(g.num_tasks(), false);
  st.edges_left.assign(g.num_tasks(), 0);
  st.producer_done.assign(g.num_edges(), false);
  st.out_edge_index.resize(g.num_tasks());
  st.in_edge_index.resize(g.num_tasks());
  for (std::size_t i = 0; i < g.num_edges(); ++i) {
    const auto& e = g.edges()[i];
    ++st.edges_left[e.dst];
    st.out_edge_index[e.src].push_back(i);
    st.in_edge_index[e.dst].push_back(i);
  }
  const auto opreds = sched::order_predecessors(g, s);
  st.order_preds_left.resize(g.num_tasks());
  st.order_succs.resize(g.num_tasks());
  for (dag::TaskId t = 0; t < g.num_tasks(); ++t) {
    st.order_preds_left[t] = static_cast<int>(opreds[t].size());
    for (dag::TaskId p : opreds[t]) st.order_succs[p].push_back(t);
  }

  for (dag::TaskId t = 0; t < g.num_tasks(); ++t) st.maybe_spawn(t);
  engine.run();

  for (dag::TaskId t = 0; t < g.num_tasks(); ++t) {
    MTSCHED_INVARIANT(st.computing[t], "replay finished with idle tasks");
  }
  return trace;
}

double TGridEmulator::makespan(const dag::Dag& g, const sched::Schedule& s,
                               std::uint64_t seed) const {
  return run(g, s, seed).makespan;
}

double TGridEmulator::measure_startup(int p, std::uint64_t seed) const {
  MTSCHED_REQUIRE(p >= 1 && p <= spec_.num_nodes, "allocation out of range");
  // A solo no-op application spends exactly its startup phase; no queueing
  // or contention exists in a single-task run.
  auto rng = entity_rng(seed, Stream::Startup, static_cast<std::uint64_t>(p));
  return machine_.startup_sample(p, rng);
}

double TGridEmulator::measure_exec(dag::TaskKernel k, int n, int p,
                                   std::uint64_t seed) const {
  MTSCHED_REQUIRE(p >= 1 && p <= spec_.num_nodes, "allocation out of range");
  auto rng = entity_rng(seed, Stream::Exec,
                        core::hash_mix(static_cast<std::uint64_t>(k),
                                       static_cast<std::uint64_t>(n),
                                       static_cast<std::uint64_t>(p)));
  return machine_.exec_time_sample(k, n, p, rng);
}

double TGridEmulator::measure_redist_overhead(int p_src, int p_dst,
                                              std::uint64_t seed) const {
  MTSCHED_REQUIRE(p_src >= 1 && p_src <= spec_.num_nodes,
                  "source allocation out of range");
  MTSCHED_REQUIRE(p_dst >= 1 && p_dst <= spec_.num_nodes,
                  "destination allocation out of range");
  auto rng = entity_rng(seed, Stream::Redist,
                        core::hash_mix(static_cast<std::uint64_t>(p_src),
                                       static_cast<std::uint64_t>(p_dst)));
  // The mostly-empty matrix's transfer time is negligible by construction;
  // only the registration service and one network round remain. The round
  // may take the worst route on hierarchical platforms (identical to
  // route_latency() on stars).
  return machine_.redist_overhead_sample(p_src, p_dst, rng) +
         spec_.max_route_latency();
}

}  // namespace mtsched::tgrid
