// Table II: the fitted empirical models — execution time regressions per
// kernel and matrix size, redistribution startup regression, and task
// startup regression — with the paper's coefficients side by side.
#include "bench_util.hpp"
#include "mtsched/core/table.hpp"
#include "mtsched/machine/java_cluster.hpp"
#include "mtsched/profiling/regression_builder.hpp"
#include "mtsched/tgrid/emulator.hpp"

int main() {
  const bench::Reporter report("table2_regression_models");
  using namespace mtsched;
  bench::banner("Table II — regression models (empirical simulator)",
                "Hunold/Casanova/Suter 2011, Table II");

  machine::JavaClusterModel java;
  const tgrid::TGridEmulator rig(java, java.platform_spec());
  const profiling::Profiler profiler(rig);
  const profiling::RegressionBuilder builder(profiler);
  const auto build =
      builder.build(profiling::ProfileConfig{}, profiling::SamplePlan::robust());

  core::TextTable t;
  t.set_header({"time to model", "sample p", "fitted model (ours)",
                "paper coefficients"});
  const auto& mm2000 = build.fits.exec.at({dag::TaskKernel::MatMul, 2000});
  const auto& mm3000 = build.fits.exec.at({dag::TaskKernel::MatMul, 3000});
  const auto& add2000 = build.fits.exec.at({dag::TaskKernel::MatAdd, 2000});
  const auto& add3000 = build.fits.exec.at({dag::TaskKernel::MatAdd, 3000});

  auto pw = [](const stats::PiecewiseFit& f) {
    std::string s = core::fmt(f.small_p.a, 2) + "/p + " +
                    core::fmt(f.small_p.b, 2);
    if (f.has_large) {
      s += " ; " + core::fmt(f.large_p.a, 2) + "*p + " +
           core::fmt(f.large_p.b, 2);
    }
    return s;
  };

  t.add_row({"exec (multiplication) n=2000", "{2,4,7,15}+{15,24,31}",
             pw(mm2000), "(a,b,c,d) = (239.44, 3.43, 0.08, 1.93)"});
  t.add_row({"exec (multiplication) n=3000", "{2,4,7,15}+{15,24,31}",
             pw(mm3000), "(a,b,c,d) = (537.91, -25.55, -0.09, 11.47)"});
  t.add_row({"exec (addition) n=2000", "{2,4,7,15,24,31}", pw(add2000),
             "(a,b) = (22.99, 0.03)"});
  t.add_row({"exec (addition) n=3000", "{2,4,7,15,24,31}", pw(add3000),
             "(a,b) = (73.59, 0.38)"});
  t.add_row({"redistribution startup [s]", "{1,16,32}",
             core::fmt(build.fits.redist.a, 5) + "*p_dst + " +
                 core::fmt(build.fits.redist.b, 3),
             "(a,b) = (0.00788, 0.10858)"});
  t.add_row({"task startup time [s]", "{1,16,32}",
             core::fmt(build.fits.startup.a, 3) + "*p + " +
                 core::fmt(build.fits.startup.b, 3),
             "(a,b) = (0.03, 0.65)"});
  std::cout << t.render() << '\n';

  std::cout << "notes:\n"
            << " * exec models: a/p + b for p <= 16, c*p + d for p > 16\n"
            << " * linear-branch slopes: ours are near zero (n = 2000, saturated) and "
               "negative\n"
            << "   (n = 3000, still scaling); the paper reports +0.08 and "
               "-0.09\n";
  return 0;
}
