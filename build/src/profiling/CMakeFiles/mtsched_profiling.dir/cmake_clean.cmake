file(REMOVE_RECURSE
  "CMakeFiles/mtsched_profiling.dir/src/profiler.cpp.o"
  "CMakeFiles/mtsched_profiling.dir/src/profiler.cpp.o.d"
  "CMakeFiles/mtsched_profiling.dir/src/regression_builder.cpp.o"
  "CMakeFiles/mtsched_profiling.dir/src/regression_builder.cpp.o.d"
  "libmtsched_profiling.a"
  "libmtsched_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtsched_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
