// Figure 2: relative prediction error of the analytical execution-time
// model against measured kernel times.
//   Left:  1-D matrix multiplication in Java on the 32-node cluster
//          (n = 2000, 3000) — errors fluctuate without clear patterns,
//          up to ~60 %.
//   Right: PDGEMM (LibSci) on a Cray XT4, FLOPS = 4165.3 MFlop/s
//          (n = 1024, 2048, 4096) — the tuned kernel still errs ~10 % on
//          average, up to ~20 %.
#include <cmath>

#include "bench_util.hpp"
#include "mtsched/core/table.hpp"
#include "mtsched/machine/java_cluster.hpp"
#include "mtsched/machine/pdgemm.hpp"
#include "mtsched/stats/ascii.hpp"
#include "mtsched/stats/summary.hpp"
#include "mtsched/tgrid/emulator.hpp"

namespace {

using namespace mtsched;

/// |T_model - T_measured| / T_measured for one kernel invocation.
template <typename MeasureFn>
std::vector<double> error_series(double nominal_flops, double flops_total,
                                 const MeasureFn& measure, int max_p) {
  std::vector<double> errors;
  for (int p = 1; p <= max_p; ++p) {
    const double model = flops_total / p / nominal_flops;
    const double measured = measure(p);
    errors.push_back(std::abs(model - measured) / measured);
  }
  return errors;
}

}  // namespace

int main() {
  const bench::Reporter report("fig2_analytical_model_error");
  bench::banner(
      "Figure 2 — relative runtime prediction error of analytical models",
      "Hunold/Casanova/Suter 2011, Figure 2 (left: 1D MM/Java, right: "
      "PDGEMM/C on Cray XT4)");

  // Left: Java 1-D MM, measured through the execution framework with 3
  // trials per point (like the paper's profiling).
  machine::JavaClusterModel java;
  const tgrid::TGridEmulator rig(java, java.platform_spec());
  std::vector<double> ps;
  for (int p = 1; p <= 32; ++p) ps.push_back(p);

  std::cout << "-- left: 1D MM / Java on the 32-node cluster --\n\n";
  for (int n : {2000, 3000}) {
    const double flops = dag::kernel_flops(dag::TaskKernel::MatMul, n);
    auto errors = error_series(
        java.nominal_flops(), flops,
        [&](int p) {
          double sum = 0.0;
          for (int trial = 0; trial < 3; ++trial) {
            sum += rig.measure_exec(dag::TaskKernel::MatMul, n, p,
                                    1000 + trial);
          }
          return sum / 3.0;
        },
        32);
    std::cout << "n = " << n << ":\n"
              << stats::render_series(ps, errors, "p", "rel.err") << '\n';
    const auto s = stats::summarize(errors);
    std::cout << "  mean error " << core::fmt(s.mean * 100, 1) << " %, max "
              << core::fmt(s.max * 100, 1) << " % (paper: fluctuates up to "
              << "~60 %+, no clear pattern)\n\n";
  }

  // Right: PDGEMM on the Cray XT4 model.
  std::cout << "-- right: PDGEMM / C on Cray XT4 (Franklin), FLOPS = "
               "4165.3 MFlop/s --\n\n";
  machine::PdgemmMachineModel cray;
  core::Rng rng(7);
  for (int n : {1024, 2048, 4096}) {
    const double flops = 2.0 * std::pow(static_cast<double>(n), 3.0);
    auto errors = error_series(
        cray.nominal_flops(), flops,
        [&](int p) {
          return cray.exec_time_sample(dag::TaskKernel::MatMul, n, p, rng);
        },
        32);
    std::cout << "n = " << n << ":\n"
              << stats::render_series(ps, errors, "p", "rel.err") << '\n';
    const auto s = stats::summarize(errors);
    std::cout << "  mean error " << core::fmt(s.mean * 100, 1) << " %, max "
              << core::fmt(s.max * 100, 1)
              << " % (paper: ~10 % average, up to ~20 %)\n\n";
  }
  return 0;
}
