#include "mtsched/platform/topology.hpp"

#include <algorithm>

#include "mtsched/core/error.hpp"

namespace mtsched::platform {

double RackSpec::effective_uplink_bandwidth() const {
  if (uplink_bandwidth > 0.0) return uplink_bandwidth;
  return static_cast<double>(nodes) * link_bandwidth / oversubscription;
}

int Topology::num_nodes() const {
  int n = 0;
  for (const auto& r : racks) n += r.nodes;
  return n;
}

int Topology::rack_of(int node) const {
  MTSCHED_REQUIRE(node >= 0, "node out of range");
  int base = 0;
  for (std::size_t r = 0; r < racks.size(); ++r) {
    base += racks[r].nodes;
    if (node < base) return static_cast<int>(r);
  }
  throw core::InvalidArgument("node out of range");
}

int Topology::first_node_of(int rack) const {
  MTSCHED_REQUIRE(rack >= 0 && rack < num_racks(), "rack out of range");
  int base = 0;
  for (int r = 0; r < rack; ++r) base += racks[static_cast<std::size_t>(r)].nodes;
  return base;
}

double Topology::flops_of(int node) const {
  const auto& r = racks[static_cast<std::size_t>(rack_of(node))];
  if (r.node_speeds.empty()) return r.node_flops;
  const int local = node - first_node_of(rack_of(node));
  return r.node_speeds[static_cast<std::size_t>(local)];
}

double Topology::route_latency(int a, int b) const {
  if (a == b) return 0.0;
  const auto ra = static_cast<std::size_t>(rack_of(a));
  const auto rb = static_cast<std::size_t>(rack_of(b));
  if (ra == rb) {
    // Same expression as the star's route_latency(): a one-rack topology
    // must reproduce the flat value bit for bit.
    return 2.0 * racks[ra].link_latency + racks[ra].tor_latency;
  }
  return racks[ra].link_latency + racks[ra].tor_latency + core.latency +
         racks[rb].tor_latency + racks[rb].link_latency;
}

double Topology::max_route_latency() const {
  double worst = 0.0;
  for (std::size_t a = 0; a < racks.size(); ++a) {
    if (racks[a].nodes > 1) {
      worst = std::max(worst,
                       2.0 * racks[a].link_latency + racks[a].tor_latency);
    }
    for (std::size_t b = 0; b < racks.size(); ++b) {
      if (a == b) continue;
      worst = std::max(worst, racks[a].link_latency + racks[a].tor_latency +
                                  core.latency + racks[b].tor_latency +
                                  racks[b].link_latency);
    }
  }
  if (worst == 0.0 && !racks.empty()) {
    // Single-node platform: keep the star convention (the intra-rack
    // route) so estimators still charge a finite latency term.
    worst = 2.0 * racks[0].link_latency + racks[0].tor_latency;
  }
  return worst;
}

double Topology::min_uplink_bandwidth() const {
  MTSCHED_REQUIRE(!racks.empty(), "topology needs at least one rack");
  double lo = racks[0].effective_uplink_bandwidth();
  for (const auto& r : racks) {
    lo = std::min(lo, r.effective_uplink_bandwidth());
  }
  return lo;
}

void Topology::validate() const {
  MTSCHED_REQUIRE(!racks.empty(), "topology needs at least one rack");
  for (const auto& r : racks) {
    MTSCHED_REQUIRE(r.nodes >= 1, "rack needs at least one node");
    MTSCHED_REQUIRE(r.node_flops > 0.0, "node speed must be positive");
    MTSCHED_REQUIRE(r.link_bandwidth > 0.0, "link bandwidth must be positive");
    MTSCHED_REQUIRE(r.link_latency >= 0.0, "link latency must be >= 0");
    MTSCHED_REQUIRE(r.tor_bandwidth > 0.0, "ToR bandwidth must be positive");
    MTSCHED_REQUIRE(r.tor_latency >= 0.0, "ToR latency must be >= 0");
    MTSCHED_REQUIRE(r.oversubscription > 0.0,
                    "oversubscription ratio must be positive");
    MTSCHED_REQUIRE(r.uplink_bandwidth >= 0.0,
                    "uplink bandwidth must be >= 0 (0 = derived)");
    if (!r.node_speeds.empty()) {
      MTSCHED_REQUIRE(r.node_speeds.size() ==
                          static_cast<std::size_t>(r.nodes),
                      "rack node_speeds must have one entry per node");
      for (double s : r.node_speeds) {
        MTSCHED_REQUIRE(s > 0.0, "node speeds must be positive");
      }
    }
  }
  MTSCHED_REQUIRE(core.bandwidth > 0.0, "core bandwidth must be positive");
  MTSCHED_REQUIRE(core.latency >= 0.0, "core latency must be >= 0");
}

ClusterSpec to_cluster(const Topology& topo) {
  topo.validate();
  ClusterSpec spec;
  spec.name = topo.name;
  spec.num_nodes = topo.num_nodes();
  const RackSpec& r0 = topo.racks.front();
  spec.node.flops = r0.node_flops;
  spec.net.link_bandwidth = r0.link_bandwidth;
  spec.net.link_latency = r0.link_latency;
  if (topo.reduces_to_star()) {
    // Exact: the one rack's ToR *is* the star backbone.
    spec.net.backbone_bandwidth = r0.tor_bandwidth;
    spec.net.backbone_latency = r0.tor_latency;
    spec.net.shared_backbone = r0.shared_tor;
  } else {
    // Flat approximation for topology-blind consumers: the core stands in
    // for the backbone. Topology-aware code reads spec.topology instead.
    spec.net.backbone_bandwidth = topo.core.bandwidth;
    spec.net.backbone_latency = topo.core.latency;
    spec.net.shared_backbone = topo.core.shared;
  }
  // Per-node speeds are flattened whenever any rack deviates from the
  // reference (rack 0) speed or carries explicit per-node speeds.
  bool uniform = true;
  for (const auto& r : topo.racks) {
    if (r.node_flops != r0.node_flops || !r.node_speeds.empty()) {
      uniform = false;
      break;
    }
  }
  if (!uniform) {
    spec.node_speeds.reserve(static_cast<std::size_t>(spec.num_nodes));
    for (int n = 0; n < spec.num_nodes; ++n) {
      spec.node_speeds.push_back(topo.flops_of(n));
    }
  }
  spec.topology = std::make_shared<const Topology>(topo);
  spec.validate();
  return spec;
}

Topology star_topology(const ClusterSpec& spec) {
  MTSCHED_REQUIRE(spec.topology == nullptr,
                  "spec already carries a topology");
  spec.validate();
  Topology topo;
  topo.name = spec.name;
  RackSpec rack;
  rack.nodes = spec.num_nodes;
  rack.node_flops = spec.node.flops;
  rack.link_bandwidth = spec.net.link_bandwidth;
  rack.link_latency = spec.net.link_latency;
  rack.tor_bandwidth = spec.net.backbone_bandwidth;
  rack.tor_latency = spec.net.backbone_latency;
  rack.shared_tor = spec.net.shared_backbone;
  rack.node_speeds = spec.node_speeds;
  topo.racks.push_back(std::move(rack));
  topo.core.bandwidth = spec.net.backbone_bandwidth;
  topo.core.latency = spec.net.backbone_latency;
  topo.core.shared = spec.net.shared_backbone;
  return topo;
}

Topology hierarchical_topology(int num_racks, int nodes_per_rack,
                               double oversubscription,
                               const ClusterSpec& base) {
  MTSCHED_REQUIRE(num_racks >= 1, "need at least one rack");
  MTSCHED_REQUIRE(nodes_per_rack >= 1, "need at least one node per rack");
  Topology topo;
  topo.name = "hier" + std::to_string(num_racks) + "x" +
              std::to_string(nodes_per_rack);
  RackSpec rack;
  rack.nodes = nodes_per_rack;
  rack.node_flops = base.node.flops;
  rack.link_bandwidth = base.net.link_bandwidth;
  rack.link_latency = base.net.link_latency;
  rack.tor_bandwidth = base.net.backbone_bandwidth;
  rack.tor_latency = base.net.backbone_latency;
  rack.shared_tor = base.net.shared_backbone;
  rack.oversubscription = oversubscription;
  topo.racks.assign(static_cast<std::size_t>(num_racks), rack);
  topo.core.bandwidth = base.net.backbone_bandwidth;
  topo.core.latency = base.net.backbone_latency;
  topo.core.shared = base.net.shared_backbone;
  topo.validate();
  return topo;
}

std::optional<ClusterSpec> named_platform(const std::string& name) {
  if (name == "bayreuth32") return bayreuth32();
  if (name == "cray_xt4") return cray_xt4();
  if (name == "hier1x32") {
    return to_cluster(hierarchical_topology(1, 32, 1.0));
  }
  if (name == "hier2x16") {
    return to_cluster(hierarchical_topology(2, 16, 1.0));
  }
  if (name == "hier4x8") {
    return to_cluster(hierarchical_topology(4, 8, 4.0));
  }
  return std::nullopt;
}

std::vector<std::string> named_platform_names() {
  return {"bayreuth32", "cray_xt4", "hier1x32", "hier2x16", "hier4x8"};
}

}  // namespace mtsched::platform
