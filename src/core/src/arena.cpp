#include "mtsched/core/arena.hpp"

#include <algorithm>

#include "mtsched/core/error.hpp"

namespace mtsched::core {

namespace {
constexpr std::size_t kMinBlockBytes = 1 << 12;

std::size_t align_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}
}  // namespace

Arena::Arena(std::size_t first_block_bytes) {
  const std::size_t size = std::max(first_block_bytes, kMinBlockBytes);
  blocks_.push_back(
      Block{std::make_unique<std::byte[]>(size), size});
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  MTSCHED_INVARIANT(align != 0 && (align & (align - 1)) == 0,
                    "arena alignment must be a power of two");
  for (;;) {
    Block& b = blocks_[current_];
    const std::size_t start = align_up(used_, align);
    if (start + bytes <= b.size) {
      used_ = start + bytes;
      return b.data.get() + start;
    }
    // Current block exhausted: move to the next chained block if it fits,
    // otherwise chain a fresh one (geometric growth keeps the chain short).
    if (current_ + 1 < blocks_.size() &&
        bytes + align <= blocks_[current_ + 1].size) {
      ++current_;
      used_ = 0;
      continue;
    }
    const std::size_t grown = std::max(blocks_.back().size * 2, bytes + align);
    blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(current_) + 1,
                   Block{std::make_unique<std::byte[]>(grown), grown});
    ++current_;
    used_ = 0;
  }
}

void Arena::rewind(const Mark& m) {
  MTSCHED_INVARIANT(m.block < blocks_.size(), "arena mark out of range");
  current_ = m.block;
  used_ = m.used;
}

void Arena::reset() {
  if (blocks_.size() > 1) {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    blocks_.clear();
    blocks_.push_back(Block{std::make_unique<std::byte[]>(total), total});
  }
  current_ = 0;
  used_ = 0;
}

std::size_t Arena::bytes_in_use() const {
  std::size_t n = used_;
  for (std::size_t i = 0; i < current_; ++i) n += blocks_[i].size;
  return n;
}

std::size_t Arena::bytes_reserved() const {
  std::size_t n = 0;
  for (const Block& b : blocks_) n += b.size;
  return n;
}

Arena& scratch_arena() {
  thread_local Arena arena(1 << 20);
  return arena;
}

}  // namespace mtsched::core
