// Microbenchmarks of the scheduling algorithms. CPA's selling point in
// the literature is its low computational complexity — these benches keep
// the whole two-step pipeline (allocation + mapping) measurably cheap on
// Table I instances and on much larger random DAGs.
#include <benchmark/benchmark.h>

#include "micro_util.hpp"
#include "mtsched/dag/generator.hpp"
#include "mtsched/exp/lab.hpp"
#include "mtsched/models/analytical.hpp"
#include "mtsched/sched/allocation.hpp"
#include "mtsched/sched/mapping.hpp"

namespace {

using namespace mtsched;

dag::GeneratedDag big_dag(int tasks, std::uint64_t seed) {
  dag::DagGenParams p;
  p.num_tasks = tasks;
  p.width = 8;
  p.add_ratio = 0.5;
  p.matrix_dim = 2000;
  p.seed = seed;
  return dag::generate_random_dag(p);
}

void BM_Allocation(benchmark::State& state, const std::string& algo_name) {
  const auto inst = big_dag(static_cast<int>(state.range(0)), 3);
  const models::AnalyticalModel model(platform::bayreuth32());
  const models::SchedCostAdapter cost(model);
  const auto algo = sched::make_allocator(algo_name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo->allocate(inst.graph, cost, 32));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
// The n=2000 points are the scaling guard for the incremental CPA
// skeleton (cached topological order, delta top/bottom level updates and
// memoized task-time curves): they must stay ~linear in the number of
// growth iterations rather than quadratic.
BENCHMARK_CAPTURE(BM_Allocation, cpa, std::string("CPA"))
    ->Arg(10)
    ->Arg(50)
    ->Arg(200)
    ->Arg(2000);
BENCHMARK_CAPTURE(BM_Allocation, hcpa, std::string("HCPA"))
    ->Arg(10)
    ->Arg(50)
    ->Arg(200)
    ->Arg(2000);
BENCHMARK_CAPTURE(BM_Allocation, mcpa, std::string("MCPA"))
    ->Arg(10)
    ->Arg(50)
    ->Arg(200)
    ->Arg(2000);

void BM_TwoStepPipeline(benchmark::State& state) {
  const auto inst = big_dag(static_cast<int>(state.range(0)), 5);
  const models::AnalyticalModel model(platform::bayreuth32());
  const models::SchedCostAdapter cost(model);
  const sched::HcpaAllocator hcpa;
  const sched::TwoStepScheduler scheduler(hcpa, cost, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(inst.graph));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TwoStepPipeline)->Arg(10)->Arg(50)->Arg(200);

void BM_DagGeneration(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(big_dag(static_cast<int>(state.range(0)),
                                     seed++));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DagGeneration)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  return bench::run_micro_suite("micro_sched", argc, argv);
}
