// Heterogeneous platforms: speed-blind scheduling vs HCPA's virtual-
// cluster homogenization (extension; the setting HCPA was designed for in
// the paper's reference [12]).
//
// For increasing speed skew, an HCPA allocation is mapped two ways onto a
// 32-node cluster whose node speeds spread around the same mean:
//   * speed-blind: pretend the cluster is homogeneous (P = 32, classic
//     EST mapping) — fast and slow nodes get mixed freely, and every
//     mixed set runs at its slowest member's pace;
//   * virtual cluster: allocate on floor(total/reference) virtual
//     processors, translate each allocation to physical nodes with enough
//     *discounted* aggregate speed, preferring similar-speed groups.
// Both schedules then run on the emulated heterogeneous cluster; each
// skew level is one campaign whose two "algorithms" are the custom
// mapping pipelines (seed slot 0: identical weather for both).
#include "bench_util.hpp"
#include "mtsched/core/table.hpp"
#include "mtsched/machine/java_cluster.hpp"
#include "mtsched/models/analytical.hpp"
#include "mtsched/sched/allocation.hpp"
#include "mtsched/sched/hetero.hpp"
#include "mtsched/sched/mapping.hpp"
#include "mtsched/stats/summary.hpp"
#include "mtsched/tgrid/emulator.hpp"

int main() {
  const bench::Reporter report("hetero_virtual_cluster");
  using namespace mtsched;
  bench::banner("Heterogeneity — speed-blind vs virtual-cluster scheduling",
                "extension; HCPA's homogenization idea (paper ref. [12])");

  const auto suite = dag::generate_table1_suite();
  machine::JavaClusterConfig mcfg;  // reference machine behaviour
  const machine::JavaClusterModel machine_model(mcfg);

  // Every third Table I instance (one sample per parameter combination).
  exp::SuiteSpec sampled;
  sampled.seed = bench::kSuiteSeed;
  for (std::size_t i = 0; i < suite.size(); i += 3) {
    sampled.dags.push_back(suite[i]);
  }

  core::TextTable t;
  t.set_header({"skew (max/min)", "blind mean [s]", "virtual mean [s]",
                "mean gain %", "virtual wins"});
  for (double skew : {1.0, 2.0, 4.0, 8.0}) {
    auto spec = machine_model.platform_spec();
    if (skew > 1.0) {
      // Speeds spread uniformly in [lo, lo*skew] with mean = reference.
      const double ref = spec.node.flops;
      const double lo = 2.0 * ref / (1.0 + skew);
      auto hetero = platform::heterogeneous_cluster(
          spec.num_nodes, lo, lo * skew, /*seed=*/5);
      spec.node_speeds = hetero.node_speeds;
      // Keep the reference at the true mean speed.
      spec.node.flops = hetero.node.flops;
    }
    const tgrid::TGridEmulator rig(machine_model, spec);
    const models::AnalyticalModel model(spec);
    const sched::HcpaAllocator hcpa;
    const sched::VirtualCluster vc(spec);
    const sched::HeteroListMapper hetero_mapper(spec);

    exp::CampaignSpec cspec;
    cspec.suites = {sampled};
    cspec.models = {{"analytical", &model}};
    cspec.exp_seeds = {bench::kExpSeed};
    cspec.threads = bench::bench_threads();

    exp::AlgoSpec blind;
    blind.label = "blind";
    blind.seed_slot = 0;
    blind.schedule = [&hcpa](const dag::Dag& g,
                             const models::CostModel& m, int P) {
      const models::SchedCostAdapter cost(m);
      const auto alloc = hcpa.allocate(g, cost, P);
      return sched::ListMapper{}.map(g, alloc, cost, P);
    };
    exp::AlgoSpec virt;
    virt.label = "virtual";
    virt.seed_slot = 0;
    virt.schedule = [&hcpa, &vc, &hetero_mapper](
                        const dag::Dag& g, const models::CostModel& m,
                        int /*P*/) {
      const models::SchedCostAdapter cost(m);
      const auto valloc = hcpa.allocate(g, cost, vc.virtual_procs());
      return hetero_mapper.map(g, valloc, cost);
    };
    cspec.algorithms = {blind, virt};

    const auto campaign = exp::Campaign(rig).run(cspec);
    std::cerr << campaign.metrics.describe();
    const auto result = campaign.case_study("analytical", "blind", "virtual",
                                            bench::kSuiteSeed,
                                            bench::kExpSeed);

    std::vector<double> blind_mk, virt_mk, gains;
    int virt_wins = 0;
    for (const auto& o : result.outcomes) {
      const double mb = o.first.makespan_exp;
      const double mv = o.second.makespan_exp;
      blind_mk.push_back(mb);
      virt_mk.push_back(mv);
      gains.push_back((mb - mv) / mb * 100.0);
      if (mv < mb) ++virt_wins;
    }
    t.add_row({core::fmt(skew, 0), core::fmt(stats::mean(blind_mk), 1),
               core::fmt(stats::mean(virt_mk), 1),
               core::fmt(stats::mean(gains), 1),
               std::to_string(virt_wins) + "/" +
                   std::to_string(blind_mk.size())});
  }
  std::cout << t.render() << '\n';
  std::cout << "With no skew the two mappings coincide (gain ~ 0). As the "
               "spread grows,\n"
            << "speed-blind sets increasingly run at their slowest member's "
               "pace and the\n"
            << "virtual-cluster translation pulls ahead.\n";
  return 0;
}
