// DAGGEN-style layered random DAG generator.
//
// Besides the paper's own Table I generator, the mixed-parallel
// scheduling literature (including the authors' other papers) evaluates
// on synthetic graphs from the DAGGEN tool, which shapes a layered DAG
// with four knobs:
//
//   fat        — width of the DAG: the number of tasks per layer is drawn
//                around fat * sqrt(n); small fat gives chain-like graphs,
//                large fat gives fork-join-like graphs;
//   regularity — uniformity of layer widths (1 = all layers equal, 0 =
//                widths vary wildly);
//   density    — fraction of the possible edges between consecutive
//                layers that actually exist;
//   jump       — edges may skip up to `jump` layers (jump = 1 connects
//                only consecutive layers).
//
// Tasks are assigned matrix kernels like the Table I generator (the
// `add_ratio` knob), so the graphs plug into the rest of the pipeline.
// Every non-entry task keeps at least one inbound edge, and in-degrees
// are capped at 2 (the kernels are binary operators).
#pragma once

#include <cstdint>
#include <string>

#include "mtsched/dag/dag.hpp"

namespace mtsched::dag {

struct DaggenParams {
  int num_tasks = 20;
  double fat = 0.5;         ///< in (0, 1]: layer width ~ fat * sqrt(n) * 2
  double regularity = 0.5;  ///< in [0, 1]
  double density = 0.5;     ///< in (0, 1]
  int jump = 2;             ///< >= 1
  double add_ratio = 0.5;   ///< fraction of addition tasks
  int matrix_dim = 2000;
  std::uint64_t seed = 1;

  std::string id() const;
};

/// Generates one layered random DAG. Throws core::InvalidArgument on
/// out-of-range knobs.
Dag generate_daggen(const DaggenParams& params);

}  // namespace mtsched::dag
