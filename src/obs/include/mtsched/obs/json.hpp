// Minimal JSON reader/writer helpers shared by the observability
// serializers (Chrome trace export/parse, BenchReport files).
//
// This is deliberately just enough JSON for documents *this repo writes*:
// strings, numbers, booleans, objects and arrays. Object member order is
// preserved (the exporters emit deterministically ordered documents and
// the tests diff them byte-for-byte). null and unicode escapes are
// rejected — nothing here emits them.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace mtsched::obs::json {

struct Value {
  enum class Type { String, Number, Bool, Object, Array };

  Type type = Type::String;
  std::string str;
  double num = 0.0;
  bool boolean = false;
  std::vector<std::pair<std::string, Value>> members;  ///< objects
  std::vector<Value> items;                            ///< arrays

  /// First member named `key`, or nullptr. Objects only.
  const Value* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parses one JSON document. `what` names the document kind in error
/// messages ("chrome trace JSON", "bench report JSON"). Throws
/// core::ParseError on malformed input or trailing characters.
Value parse(const std::string& text, const std::string& what);

/// `member(obj, key)` like find(), but throws core::ParseError when the
/// key is missing; `what` as in parse().
const Value& member(const Value& obj, const std::string& key,
                    const std::string& what);

/// Escapes `"`, `\`, newline and tab for embedding in a JSON string.
std::string escape(const std::string& s);

}  // namespace mtsched::obs::json
