// ASCII renderings of the paper's figure types: paired bar charts
// (Figures 1/5/7), line series (Figures 2/3/6), surfaces (Figure 4) and
// box-and-whisker plots (Figure 8). Bench binaries print these alongside
// machine-readable CSV rows.
#pragma once

#include <string>
#include <vector>

#include "mtsched/stats/summary.hpp"

namespace mtsched::stats {

/// One labelled pair of values (e.g. simulated vs experimental relative
/// makespan for one DAG).
struct PairedBar {
  std::string label;
  double first = 0.0;   ///< e.g. simulation
  double second = 0.0;  ///< e.g. experiment
};

/// Renders paired horizontal bars around a zero axis; `full_scale` maps to
/// the full bar width. Mirrors the style of the paper's Figures 1, 5, 7.
std::string render_paired_bars(const std::vector<PairedBar>& bars,
                               double full_scale,
                               const std::string& first_name = "sim",
                               const std::string& second_name = "exp",
                               int width = 24);

/// Renders an x/y series as rows "x  y  <bar>"; for Figures 2, 3, 6.
std::string render_series(const std::vector<double>& x,
                          const std::vector<double>& y,
                          const std::string& x_name,
                          const std::string& y_name, int width = 40);

/// Renders one box-and-whisker as a single text row on [lo, hi].
std::string render_box_row(const std::string& label, const BoxStats& b,
                           double lo, double hi, int width = 60);

}  // namespace mtsched::stats
