file(REMOVE_RECURSE
  "libmtsched_platform.a"
)
