// Tests for platform descriptions and the platform file parser.
#include <gtest/gtest.h>

#include "mtsched/core/error.hpp"
#include "mtsched/platform/cluster.hpp"
#include "mtsched/platform/parser.hpp"

namespace {

using namespace mtsched::platform;
using mtsched::core::InvalidArgument;
using mtsched::core::ParseError;

TEST(Presets, Bayreuth32MatchesThePaper) {
  const auto c = bayreuth32();
  EXPECT_EQ(c.num_nodes, 32);
  EXPECT_DOUBLE_EQ(c.node.flops, 250e6);             // Java MM calibration
  EXPECT_DOUBLE_EQ(c.net.link_bandwidth, 125e6);     // 1 Gb/s
  EXPECT_DOUBLE_EQ(c.net.link_latency, 100e-6);      // 100 us
  EXPECT_TRUE(c.net.shared_backbone);
  EXPECT_NO_THROW(c.validate());
}

TEST(Presets, CrayXt4MatchesFigure2) {
  const auto c = cray_xt4();
  EXPECT_DOUBLE_EQ(c.node.flops, 4165.3e6);  // PDGEMM rate on Franklin
  EXPECT_FALSE(c.net.shared_backbone);
  EXPECT_NO_THROW(c.validate());
}

TEST(RouteLatency, TwoLinksPlusBackbone) {
  ClusterSpec c = bayreuth32();
  c.net.link_latency = 1e-4;
  c.net.backbone_latency = 5e-5;
  EXPECT_DOUBLE_EQ(c.route_latency(), 2.5e-4);
}

TEST(Validate, CatchesNonPhysicalValues) {
  ClusterSpec c = bayreuth32();
  c.num_nodes = 0;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c = bayreuth32();
  c.node.flops = -1;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c = bayreuth32();
  c.net.link_bandwidth = 0;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c = bayreuth32();
  c.net.link_latency = -1e-6;
  EXPECT_THROW(c.validate(), InvalidArgument);
}

TEST(Parser, RoundTripsPresets) {
  for (const auto& spec : {bayreuth32(), cray_xt4()}) {
    const auto parsed = parse_cluster(to_text(spec));
    EXPECT_EQ(parsed.name, spec.name);
    EXPECT_EQ(parsed.num_nodes, spec.num_nodes);
    EXPECT_DOUBLE_EQ(parsed.node.flops, spec.node.flops);
    EXPECT_DOUBLE_EQ(parsed.net.link_bandwidth, spec.net.link_bandwidth);
    EXPECT_DOUBLE_EQ(parsed.net.link_latency, spec.net.link_latency);
    EXPECT_DOUBLE_EQ(parsed.net.backbone_bandwidth,
                     spec.net.backbone_bandwidth);
    EXPECT_EQ(parsed.net.shared_backbone, spec.net.shared_backbone);
  }
}

TEST(Parser, AcceptsCommentsAndWhitespace) {
  const auto c = parse_cluster(
      "# my cluster\n"
      "  name = test   # trailing comment\n"
      "nodes = 8\n"
      "node_flops = 1e9\n");
  EXPECT_EQ(c.name, "test");
  EXPECT_EQ(c.num_nodes, 8);
  EXPECT_DOUBLE_EQ(c.node.flops, 1e9);
}

TEST(Parser, MissingKeysKeepDefaults) {
  const auto c = parse_cluster("nodes = 4\n");
  EXPECT_EQ(c.num_nodes, 4);
  EXPECT_DOUBLE_EQ(c.node.flops, ClusterSpec{}.node.flops);
}

TEST(Parser, RejectsUnknownKey) {
  EXPECT_THROW(parse_cluster("cores = 4\n"), ParseError);
}

TEST(Parser, RejectsMalformedValue) {
  EXPECT_THROW(parse_cluster("nodes = four\n"), ParseError);
  EXPECT_THROW(parse_cluster("shared_backbone = maybe\n"), ParseError);
  EXPECT_THROW(parse_cluster("just a line\n"), ParseError);
}

TEST(Parser, BooleanForms) {
  EXPECT_TRUE(parse_cluster("shared_backbone = true\n").net.shared_backbone);
  EXPECT_TRUE(parse_cluster("shared_backbone = 1\n").net.shared_backbone);
  EXPECT_FALSE(parse_cluster("shared_backbone = false\n").net.shared_backbone);
  EXPECT_FALSE(parse_cluster("shared_backbone = 0\n").net.shared_backbone);
}

TEST(Parser, ValidatesResult) {
  EXPECT_THROW(parse_cluster("nodes = 0\n"), InvalidArgument);
}

}  // namespace
