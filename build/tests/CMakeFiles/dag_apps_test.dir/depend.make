# Empty dependencies file for dag_apps_test.
# This may be replaced when dependencies are built.
