// Session/Service/RpcServer tests: the typed request pipeline, the
// sharded schedule cache, admission control, --threads 0 semantics, and
// the loopback serve path returning results identical to a local run.
#include "mtsched/exp/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mtsched/core/error.hpp"
#include "mtsched/core/thread_pool.hpp"
#include "mtsched/dag/export.hpp"
#include "mtsched/dag/generator.hpp"
#include "mtsched/exp/rpc.hpp"
#include "mtsched/exp/server.hpp"
#include "mtsched/obs/metrics.hpp"
#include "mtsched/obs/sink.hpp"
#include "mtsched/platform/topology.hpp"

namespace {

using namespace mtsched;

const exp::Lab& lab() {
  static const exp::Lab instance;
  return instance;
}

std::string small_dag_text(std::uint64_t seed = 11) {
  dag::DagGenParams p;
  p.num_tasks = 8;
  p.width = 3;
  p.add_ratio = 0.5;
  p.matrix_dim = 2000;
  p.seed = seed;
  return dag::to_text(dag::generate_random_dag(p).graph);
}

exp::ScheduleRequest sample_request() {
  exp::ScheduleRequest req;
  req.dag_text = small_dag_text();
  req.algorithm = "HCPA";
  req.model = models::ModelSpec::parse("profile");
  req.exp_seed = 42;
  return req;
}

// --- Session ------------------------------------------------------------

TEST(Session, ServesARequest) {
  const exp::Session session(lab());
  const auto resp = session.run(sample_request());
  ASSERT_TRUE(resp.ok()) << resp.message;
  EXPECT_EQ(resp.model, "profile");
  EXPECT_EQ(resp.algorithm, "HCPA");
  EXPECT_EQ(resp.exp_seed, 42u);
  EXPECT_GT(resp.est_makespan, 0.0);
  EXPECT_GT(resp.makespan_sim, 0.0);
  EXPECT_GT(resp.makespan_exp, 0.0);
  EXPECT_TRUE(resp.executed);
  EXPECT_FALSE(resp.allocation.empty());
}

TEST(Session, IsDeterministicAcrossSessions) {
  const exp::Session a(lab());
  const exp::Session b(lab());
  const auto req = sample_request();
  // Compare through the codec: equal encodings mean equal bytes on the
  // wire and therefore equal rendered reports.
  EXPECT_EQ(exp::encode_response(a.run(req)),
            exp::encode_response(b.run(req)));
}

TEST(Session, MemoizesCompatibleRequests) {
  const exp::Session session(lab());
  auto req = sample_request();
  ASSERT_TRUE(session.run(req).ok());
  EXPECT_EQ(session.cache_misses(), 1u);
  EXPECT_EQ(session.cache_hits(), 0u);

  // Same DAG/model/algorithm, different weather: the schedule memo is
  // experiment-seed-independent, so this is a hit.
  req.exp_seed = 1234;
  ASSERT_TRUE(session.run(req).ok());
  EXPECT_EQ(session.cache_hits(), 1u);

  // A different algorithm is a different cell.
  req.algorithm = "MCPA";
  ASSERT_TRUE(session.run(req).ok());
  EXPECT_EQ(session.cache_misses(), 2u);

  // A different DAG is a different cell too.
  req.dag_text = small_dag_text(99);
  ASSERT_TRUE(session.run(req).ok());
  EXPECT_EQ(session.cache_misses(), 3u);
}

TEST(Session, SkipsExecutionOnRequest) {
  const exp::Session session(lab());
  auto req = sample_request();
  req.execute = false;
  const auto resp = session.run(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp.executed);
  EXPECT_GT(resp.makespan_sim, 0.0);
  EXPECT_EQ(resp.makespan_exp, 0.0);
}

TEST(Session, FillsArtifacts) {
  const exp::Session session(lab());
  exp::RunArtifacts artifacts;
  const auto resp = session.run(sample_request(), &artifacts);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(artifacts.schedule.allocation(), resp.allocation);
  EXPECT_EQ(artifacts.exp_trace.makespan, resp.makespan_exp);
}

TEST(Session, BadRequestsComeBackInBand) {
  const exp::Session session(lab());
  auto req = sample_request();
  req.dag_text = "this is not a dag";
  auto resp = session.run(req);
  EXPECT_EQ(resp.status, exp::ServiceStatus::BadRequest);
  EXPECT_FALSE(resp.message.empty());

  req = sample_request();
  req.algorithm = "MAGIC";
  resp = session.run(req);
  EXPECT_EQ(resp.status, exp::ServiceStatus::BadRequest);
}

TEST(ScheduleCache, ComputesOncePerKeyUnderContention) {
  exp::ScheduleCache cache(4);
  std::atomic<int> computes{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      const auto memo = cache.get_or_compute("shared", [&] {
        computes.fetch_add(1);
        exp::ScheduleMemo m;
        m.makespan_sim = 7.0;
        return m;
      });
      EXPECT_EQ(memo->makespan_sim, 7.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ScheduleCache, FailedComputePropagatesToAllWaiters) {
  exp::ScheduleCache cache;
  const auto boom = [&]() -> exp::ScheduleMemo {
    throw std::runtime_error("boom");
  };
  EXPECT_THROW((void)cache.get_or_compute("bad", boom), std::runtime_error);
  // The failure is cached, not retried: same inputs, same failure.
  bool hit = false;
  EXPECT_THROW((void)cache.get_or_compute("bad", boom, &hit),
               std::runtime_error);
  EXPECT_TRUE(hit);
}

// --- Service ------------------------------------------------------------

TEST(Service, CallMatchesSession) {
  const exp::Session session(lab());
  exp::Service service(lab());
  const auto req = sample_request();
  EXPECT_EQ(exp::encode_response(service.call(req)),
            exp::encode_response(session.run(req)));
}

TEST(Service, ThreadsZeroMeansHardwareConcurrency) {
  exp::ServiceConfig cfg;
  cfg.threads = 0;
  exp::Service service(lab(), cfg);
  EXPECT_EQ(service.threads(), core::ThreadPool::recommended_threads());
}

TEST(Service, AdmissionControlRejectsBeyondTheQueueLimit) {
  exp::ServiceConfig cfg;
  cfg.threads = 1;
  cfg.queue_limit = 1;
  exp::Service service(lab(), cfg);

  // Block the single worker inside the first request's delivery callback
  // so the one queue slot stays deterministically occupied.
  std::promise<void> entered;
  std::promise<void> release;
  std::promise<void> finished;
  auto release_future = release.get_future().share();
  ASSERT_TRUE(service.submit(
      sample_request(), [&](const exp::ScheduleResponse& resp) {
        EXPECT_TRUE(resp.ok());
        entered.set_value();
        release_future.wait();
        finished.set_value();
      }));
  entered.get_future().wait();

  // The slot is taken: the next submit must be rejected, not queued.
  EXPECT_FALSE(service.submit(sample_request(),
                              [](const exp::ScheduleResponse&) {
                                FAIL() << "rejected submit must not deliver";
                              }));
  const auto rejected = service.reject_response();
  EXPECT_EQ(rejected.status, exp::ServiceStatus::Overloaded);
  EXPECT_FALSE(rejected.message.empty());

  release.set_value();
  finished.get_future().wait();
  // The slot frees after delivery; admission recovers.
  while (service.in_flight() != 0) std::this_thread::yield();
  EXPECT_TRUE(service.call(sample_request()).ok());
}

TEST(Service, ReportsMetricsThroughTheSink) {
  obs::MetricsRegistry metrics;
  obs::BasicSink sink(nullptr, &metrics);
  exp::ServiceConfig cfg;
  cfg.threads = 1;
  exp::Service service(lab(), cfg, &sink);
  ASSERT_TRUE(service.call(sample_request()).ok());
  ASSERT_TRUE(service.call(sample_request()).ok());
  EXPECT_EQ(metrics.counter("service.accepted").value(), 2u);
  EXPECT_EQ(metrics.counter("service.completed").value(), 2u);
  EXPECT_EQ(metrics.counter("service.rejected").value(), 0u);
  EXPECT_EQ(metrics.histogram("service.latency_seconds").summary().count, 2u);
  EXPECT_EQ(service.session().cache_hits(), 1u);
  EXPECT_EQ(service.session().cache_misses(), 1u);
}

// --- Platform registry ----------------------------------------------------

/// A lab over an arbitrary platform spec, mirroring the CLI's --platform
/// construction: built-in cluster behaviour scaled to the spec's node
/// count and reference speed.
std::unique_ptr<exp::Lab> lab_for_spec(platform::ClusterSpec spec) {
  exp::LabConfig cfg;
  cfg.machine.num_nodes = spec.num_nodes;
  cfg.machine.nominal_flops = spec.node.flops;
  if (spec.num_nodes != 32) {
    cfg.sample_plan = profiling::SamplePlan::scaled(spec.num_nodes);
  }
  auto model = std::make_unique<machine::JavaClusterModel>(cfg.machine);
  return std::make_unique<exp::Lab>(std::move(model), std::move(spec), cfg);
}

/// A small 2-rack platform so registry tests stay cheap (8 nodes).
platform::ClusterSpec tiny_hier_spec() {
  return platform::to_cluster(platform::hierarchical_topology(2, 4, 4.0));
}

TEST(Session, ResolvesRegisteredPlatformsByName) {
  const auto hier_lab = lab_for_spec(tiny_hier_spec());
  exp::Session session(lab());
  session.add_platform(*hier_lab);
  EXPECT_EQ(&session.resolve_lab(""), &lab());
  EXPECT_EQ(&session.resolve_lab("hier2x4"), hier_lab.get());
  EXPECT_THROW((void)session.resolve_lab("nosuch"),
               mtsched::core::InvalidArgument);

  auto req = sample_request();
  req.platform = "hier2x4";
  req.mapping = sched::MappingStrategy::RackAware;
  const auto resp = session.run(req);
  ASSERT_TRUE(resp.ok()) << resp.message;
  EXPECT_EQ(resp.platform, "hier2x4");
  ASSERT_FALSE(resp.allocation.empty());
  // Scheduled against the registered 8-node platform, not the default.
  for (int a : resp.allocation) EXPECT_LE(a, 8);
}

TEST(Session, UnknownPlatformIsBadRequest) {
  const exp::Session session(lab());
  auto req = sample_request();
  req.platform = "andromeda";
  const auto resp = session.run(req);
  EXPECT_EQ(resp.status, exp::ServiceStatus::BadRequest);
  EXPECT_NE(resp.message.find("andromeda"), std::string::npos)
      << resp.message;
}

TEST(Session, PlatformIsPartOfTheScheduleCacheKey) {
  const auto hier_lab = lab_for_spec(tiny_hier_spec());
  exp::Session session(lab());
  session.add_platform(*hier_lab);
  auto req = sample_request();
  ASSERT_TRUE(session.run(req).ok());
  EXPECT_EQ(session.cache_misses(), 1u);
  // Same DAG/model/algorithm on a different platform: a new cache cell.
  req.platform = "hier2x4";
  ASSERT_TRUE(session.run(req).ok());
  EXPECT_EQ(session.cache_misses(), 2u);
  EXPECT_EQ(session.cache_hits(), 0u);
  ASSERT_TRUE(session.run(req).ok());
  EXPECT_EQ(session.cache_hits(), 1u);
}

TEST(Session, OneRackPlatformIsBitIdenticalToStar) {
  // The bit-identity bridge at the service layer: an 8-node star and its
  // one-rack topology twin serve byte-identical responses.
  auto star = platform::bayreuth32();
  star.num_nodes = 8;
  star.name = "star8";
  const auto one_rack = platform::to_cluster(platform::star_topology(star));
  const auto lab_star = lab_for_spec(star);
  const auto lab_rack = lab_for_spec(one_rack);
  const exp::Session a(*lab_star);
  const exp::Session b(*lab_rack);
  for (const auto mapping : {sched::MappingStrategy::EarliestStart,
                             sched::MappingStrategy::RedistributionAware}) {
    auto req = sample_request();
    req.mapping = mapping;
    EXPECT_EQ(exp::encode_response(a.run(req)),
              exp::encode_response(b.run(req)))
        << sched::mapping_name(mapping);
  }
}

TEST(Service, ServesRegisteredPlatforms) {
  const auto hier_lab = lab_for_spec(tiny_hier_spec());
  exp::ServiceConfig cfg;
  cfg.threads = 1;
  exp::Service service(lab(), cfg);
  service.add_platform(*hier_lab);

  auto req = sample_request();
  req.platform = "hier2x4";
  const auto resp = service.call(req);
  ASSERT_TRUE(resp.ok()) << resp.message;
  EXPECT_EQ(resp.platform, "hier2x4");

  // Byte-identical to a direct session with the same registry.
  exp::Session session(lab());
  session.add_platform(*hier_lab);
  EXPECT_EQ(exp::encode_response(resp), exp::encode_response(session.run(req)));

  // Unknown names come back in-band, not as transport errors.
  req.platform = "nosuch";
  EXPECT_EQ(service.call(req).status, exp::ServiceStatus::BadRequest);
}

// --- RpcServer loopback -------------------------------------------------

/// Serve fixture: a service + server on an ephemeral port with the accept
/// loop on its own thread, torn down safely even when a test fails.
struct ServeFixture {
  exp::Service service;
  exp::RpcServer server;
  std::thread accept_thread;

  explicit ServeFixture(exp::ServiceConfig cfg = {})
      : service(lab(), cfg), server(service) {
    accept_thread = std::thread([this] { server.serve(); });
  }

  ~ServeFixture() {
    server.shutdown();
    accept_thread.join();
  }
};

TEST(RpcServer, LoopbackMatchesLocalSession) {
  ServeFixture fx;
  exp::RpcClient client("127.0.0.1", fx.server.port());
  EXPECT_EQ(client.ping().message, "pong");

  const exp::Session local(lab());
  for (const auto algo : {"HCPA", "MCPA"}) {
    auto req = sample_request();
    req.algorithm = algo;
    EXPECT_EQ(exp::encode_response(client.call(req)),
              exp::encode_response(local.run(req)));
  }
  const auto stats = fx.server.stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(RpcServer, ConcurrentClientsGetIdenticalAnswers) {
  exp::ServiceConfig cfg;
  cfg.threads = 2;
  ServeFixture fx(cfg);
  const exp::Session local(lab());
  const auto req = sample_request();
  const std::string expect = exp::encode_response(local.run(req));

  std::vector<std::thread> clients;
  std::vector<std::string> got(4);
  for (std::size_t i = 0; i < got.size(); ++i) {
    clients.emplace_back([&, i] {
      exp::RpcClient client("127.0.0.1", fx.server.port());
      got[i] = exp::encode_response(client.call(req));
    });
  }
  for (auto& t : clients) t.join();
  for (const auto& g : got) EXPECT_EQ(g, expect);
}

TEST(RpcServer, UndecodablePayloadKeepsTheConnection) {
  ServeFixture fx;
  const auto sock = core::net::connect_to("127.0.0.1", fx.server.port());
  core::net::write_frame(sock, "this is not rpc json");
  const auto reply = core::net::read_frame(sock);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(exp::parse_response(*reply).status,
            exp::ServiceStatus::BadRequest);
  // The frame boundary was intact, so the connection still works.
  core::net::write_frame(sock, exp::encode_ping());
  const auto pong = core::net::read_frame(sock);
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(exp::parse_response(*pong).ok());
  EXPECT_EQ(fx.server.stats().protocol_errors, 1u);
}

TEST(RpcServer, OversizedFrameIsRejectedAndDropped) {
  ServeFixture fx;
  const auto sock = core::net::connect_to("127.0.0.1", fx.server.port());
  // Announce far beyond the frame limit without sending a payload.
  const unsigned char header[4] = {0x7F, 0xFF, 0xFF, 0xFF};
  sock.write_all(header, sizeof(header));
  const auto reply = core::net::read_frame(sock);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(exp::parse_response(*reply).status,
            exp::ServiceStatus::BadRequest);
  // The stream is unsound after an oversized announcement: dropped.
  EXPECT_FALSE(core::net::read_frame(sock).has_value());
}

TEST(RpcServer, ShutdownUnblocksIdleConnections) {
  // A connected-but-idle client must not pin the server: shutdown()
  // half-closes open connections so their handlers wake with EOF, and
  // serve() can join them without waiting for the client to hang up.
  auto fx = std::make_unique<ServeFixture>();
  exp::RpcClient idle("127.0.0.1", fx->server.port());
  EXPECT_EQ(idle.ping().message, "pong");
  fx.reset();  // shutdown + join with `idle` still connected — no hang
}

TEST(RpcServer, ShutdownRequestStopsTheServer) {
  ServeFixture fx;
  exp::RpcClient client("127.0.0.1", fx.server.port());
  const auto ack = client.request_shutdown();
  EXPECT_TRUE(ack.ok());
  EXPECT_EQ(ack.message, "shutting down");
  // The accept loop winds down on its own; joining must not hang.
  for (int i = 0; i < 200 && !fx.server.stopping(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(fx.server.stopping());
}

}  // namespace
