#include "mtsched/sched/allocation.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "mtsched/core/error.hpp"
#include "mtsched/obs/trace.hpp"

namespace mtsched::sched {

namespace {

constexpr double kEps = 1e-12;

/// Per-task times under the current allocation.
std::vector<double> task_times(const dag::Dag& g, const SchedCost& cost,
                               const std::vector<int>& alloc) {
  std::vector<double> tau(g.num_tasks());
  for (dag::TaskId t = 0; t < g.num_tasks(); ++t) {
    tau[t] = cost.task_time(g.task(t), alloc[t]);
    MTSCHED_INVARIANT(tau[t] > 0.0, "task time must be positive");
  }
  return tau;
}

struct Levels {
  std::vector<double> top;     ///< longest path length ending before t
  std::vector<double> bottom;  ///< longest path length from t inclusive
  double t_cp = 0.0;
};

/// Top/bottom levels with zero edge weights (classic CPA uses computation
/// times only during allocation).
Levels levels(const dag::Dag& g, const std::vector<double>& tau) {
  Levels lv;
  lv.top.assign(g.num_tasks(), 0.0);
  lv.bottom.assign(g.num_tasks(), 0.0);
  const auto order = g.topological_order();
  for (dag::TaskId t : order) {
    for (dag::TaskId p : g.predecessors(t)) {
      lv.top[t] = std::max(lv.top[t], lv.top[p] + tau[p]);
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const dag::TaskId t = *it;
    lv.bottom[t] = tau[t];
    for (dag::TaskId s : g.successors(t)) {
      lv.bottom[t] = std::max(lv.bottom[t], tau[t] + lv.bottom[s]);
    }
    lv.t_cp = std::max(lv.t_cp, lv.top[t] + lv.bottom[t]);
  }
  return lv;
}

double average_area(const dag::Dag& g, const SchedCost& cost,
                    const std::vector<int>& alloc, int P) {
  double area = 0.0;
  for (dag::TaskId t = 0; t < g.num_tasks(); ++t) {
    area += static_cast<double>(alloc[t]) * cost.task_time(g.task(t), alloc[t]);
  }
  return area / static_cast<double>(P);
}

/// Growth gate customization point for the three algorithms. `may_grow`
/// must be a pure predicate; `on_grow` is invoked once per actual growth.
using GrowGate = std::function<bool(dag::TaskId, int /*new_p*/)>;
using OnGrow = std::function<void(dag::TaskId)>;

std::vector<int> cpa_skeleton(const dag::Dag& g, const SchedCost& cost, int P,
                              const GrowGate& may_grow,
                              const OnGrow& on_grow = {}) {
  MTSCHED_REQUIRE(P >= 1, "cluster must have at least one processor");
  MTSCHED_REQUIRE(g.num_tasks() > 0, "cannot allocate an empty DAG");
  std::vector<int> alloc(g.num_tasks(), 1);
  auto tau = task_times(g, cost, alloc);

  // Each iteration adds one processor to one task; the loop is bounded by
  // the total allocation head-room.
  const std::size_t max_iter = g.num_tasks() * static_cast<std::size_t>(P);
  for (std::size_t iter = 0; iter < max_iter; ++iter) {
    const auto lv = levels(g, tau);
    const double t_a = average_area(g, cost, alloc, P);
    if (lv.t_cp <= t_a + kEps) break;  // work-bound: stop growing

    // Candidate: the critical-path task with the largest gain. As in the
    // original CPA, the gain may be small or even negative on bumpy cost
    // curves — the loop is driven by the T_CP/T_A criterion alone, which
    // is exactly how CPA comes to over-allocate.
    dag::TaskId best = dag::kInvalidTask;
    double best_gain = -std::numeric_limits<double>::infinity();
    for (dag::TaskId t = 0; t < g.num_tasks(); ++t) {
      if (lv.top[t] + lv.bottom[t] < lv.t_cp - 1e-9 * lv.t_cp) continue;
      if (alloc[t] >= P) continue;
      const int np = alloc[t] + 1;
      if (!may_grow(t, np)) continue;
      const double tau_new = cost.task_time(g.task(t), np);
      const double gain = tau[t] / static_cast<double>(alloc[t]) -
                          tau_new / static_cast<double>(np);
      if (gain > best_gain + kEps) {
        best_gain = gain;
        best = t;
      }
    }
    if (best == dag::kInvalidTask) break;  // nothing can usefully grow
    alloc[best] += 1;
    tau[best] = cost.task_time(g.task(best), alloc[best]);
    if (on_grow) on_grow(best);
  }
  return alloc;
}

}  // namespace

CpaMetrics cpa_metrics(const dag::Dag& g, const SchedCost& cost,
                       const std::vector<int>& alloc, int P) {
  MTSCHED_REQUIRE(alloc.size() == g.num_tasks(),
                  "allocation vector size mismatch");
  const auto tau = task_times(g, cost, alloc);
  CpaMetrics m;
  m.t_cp = levels(g, tau).t_cp;
  m.t_a = average_area(g, cost, alloc, P);
  return m;
}

std::vector<int> CpaAllocator::allocate(const dag::Dag& g,
                                        const SchedCost& cost, int P) const {
  const obs::Span obs_span(obs::current_track(), "sched",
                           "allocate:" + name(),
                           {{"tasks", std::to_string(g.num_tasks())},
                            {"P", std::to_string(P)}});
  return cpa_skeleton(g, cost, P, [](dag::TaskId, int) { return true; });
}

HcpaAllocator::HcpaAllocator(double min_efficiency)
    : min_efficiency_(min_efficiency) {
  MTSCHED_REQUIRE(min_efficiency > 0.0 && min_efficiency <= 1.0,
                  "min_efficiency must be in (0, 1]");
}

std::vector<int> HcpaAllocator::allocate(const dag::Dag& g,
                                         const SchedCost& cost, int P) const {
  const obs::Span obs_span(obs::current_track(), "sched",
                           "allocate:" + name(),
                           {{"tasks", std::to_string(g.num_tasks())},
                            {"P", std::to_string(P)}});
  // Self-constrained cap: no task may use more than ceil(P / omega)
  // processors, where omega is the DAG's maximum precedence-level width —
  // enough processors always remain for the task parallelism the DAG can
  // offer. The cap binds under every cost model, including the analytical
  // one whose ideal speedup curves never trip the efficiency gate; this is
  // what makes HCPA's allocations structurally smaller than MCPA's.
  const auto levels = g.precedence_levels();
  std::vector<int> width(static_cast<std::size_t>(g.num_levels()), 0);
  for (dag::TaskId t = 0; t < g.num_tasks(); ++t) {
    ++width[static_cast<std::size_t>(levels[t])];
  }
  const int omega = *std::max_element(width.begin(), width.end());
  const int cap = std::max(
      1, static_cast<int>(std::ceil(static_cast<double>(P) /
                                    static_cast<double>(omega))));
  // Cache tau(t, 1) for the efficiency gate.
  std::vector<double> tau1(g.num_tasks());
  for (dag::TaskId t = 0; t < g.num_tasks(); ++t) {
    tau1[t] = cost.task_time(g.task(t), 1);
  }
  const double min_eff = min_efficiency_;
  return cpa_skeleton(g, cost, P, [&](dag::TaskId t, int np) {
    if (np > cap) return false;
    // Envelope check: growth stops only on *sustained* inefficiency. A
    // single inefficient point (e.g. a p = 8 cache outlier in a profiled
    // cost curve) does not wall off all larger allocations.
    const auto eff = [&](int p) {
      return tau1[t] / (static_cast<double>(p) * cost.task_time(g.task(t), p));
    };
    if (eff(np) >= min_eff) return true;
    return np < P && eff(np + 1) >= min_eff;
  });
}

std::vector<int> McpaAllocator::allocate(const dag::Dag& g,
                                         const SchedCost& cost, int P) const {
  const obs::Span obs_span(obs::current_track(), "sched",
                           "allocate:" + name(),
                           {{"tasks", std::to_string(g.num_tasks())},
                            {"P", std::to_string(P)}});
  const auto level = g.precedence_levels();
  const int num_levels = g.num_levels();
  // Running total allocation per precedence level (starts at one processor
  // per task, matching the skeleton's initial allocation).
  std::vector<int> level_total(static_cast<std::size_t>(num_levels), 0);
  for (dag::TaskId t = 0; t < g.num_tasks(); ++t) {
    ++level_total[static_cast<std::size_t>(level[t])];
  }
  return cpa_skeleton(
      g, cost, P,
      [&](dag::TaskId t, int) {
        return level_total[static_cast<std::size_t>(level[t])] < P;
      },
      [&](dag::TaskId t) {
        ++level_total[static_cast<std::size_t>(level[t])];
      });
}

std::vector<int> SerialAllocator::allocate(const dag::Dag& g,
                                           const SchedCost& cost,
                                           int P) const {
  (void)cost;
  const obs::Span obs_span(obs::current_track(), "sched",
                           "allocate:" + name(),
                           {{"tasks", std::to_string(g.num_tasks())},
                            {"P", std::to_string(P)}});
  MTSCHED_REQUIRE(P >= 1, "cluster must have at least one processor");
  return std::vector<int>(g.num_tasks(), 1);
}

std::vector<int> MaxParAllocator::allocate(const dag::Dag& g,
                                           const SchedCost& cost,
                                           int P) const {
  (void)cost;
  const obs::Span obs_span(obs::current_track(), "sched",
                           "allocate:" + name(),
                           {{"tasks", std::to_string(g.num_tasks())},
                            {"P", std::to_string(P)}});
  MTSCHED_REQUIRE(P >= 1, "cluster must have at least one processor");
  return std::vector<int>(g.num_tasks(), P);
}

std::unique_ptr<Allocator> make_allocator(const std::string& name) {
  if (name == "CPA") return std::make_unique<CpaAllocator>();
  if (name == "HCPA") return std::make_unique<HcpaAllocator>();
  if (name == "MCPA") return std::make_unique<McpaAllocator>();
  if (name == "SEQ") return std::make_unique<SerialAllocator>();
  if (name == "MAXPAR") return std::make_unique<MaxParAllocator>();
  throw core::InvalidArgument("unknown allocator '" + name + "'");
}

}  // namespace mtsched::sched
