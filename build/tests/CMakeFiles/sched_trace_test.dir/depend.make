# Empty dependencies file for sched_trace_test.
# This may be replaced when dependencies are built.
