// Empirical model construction from sparse measurements (paper Section
// VII, Table II).
//
// The paper first samples the powers of two p = {1,2,4,8,16,32} and finds
// the fit ruined by outliers at p = 8 and p = 16 (Figure 6, left); it then
// side-steps the outliers by sampling p = {2,4,7,15} for the hyperbolic
// branch and {15,24,31} for the linear branch (Figure 6, right). Both
// sampling plans are provided so Figure 6 can be reproduced.
#pragma once

#include <vector>

#include "mtsched/models/empirical.hpp"
#include "mtsched/profiling/profiler.hpp"

namespace mtsched::profiling {

/// How the regression coefficients are estimated from the samples.
enum class FitMethod {
  LeastSquares,  ///< the paper's choice; outliers in the samples hurt
  TheilSen,      ///< median-based, tolerates a minority of outliers —
                 ///< addresses the outlier challenge the paper's
                 ///< conclusion raises for sparse-profile calibration
};

/// Which allocation sizes to measure for each regression.
struct SamplePlan {
  std::vector<int> mm_small_p;   ///< hyperbolic branch (p <= split)
  std::vector<int> mm_large_p;   ///< linear branch (p > split, may be empty)
  std::vector<int> add_p;        ///< single hyperbolic fit for additions
  std::vector<int> overhead_p;   ///< startup + redistribution linear fits
  int split = 16;
  FitMethod method = FitMethod::LeastSquares;

  /// The paper's final plan: p = {2,4,7,15} + {15,24,31}, additions over
  /// {2,4,7,15,24,31}, overheads over {1,16,32} (Table II).
  static SamplePlan robust();

  /// The naive powers-of-two plan that trips over the outliers at 8 and 16
  /// (Figure 6, left).
  static SamplePlan naive();

  /// The robust plan rescaled to a cluster of `num_nodes` processors
  /// (num_nodes >= 4); sample points are spread like {2,4,7,15}+{15,24,31}
  /// proportionally, the split sits at num_nodes / 2.
  static SamplePlan scaled(int num_nodes);
};

/// One measured regression data set (kept for plotting Figure 6).
struct FitData {
  std::vector<double> p;
  std::vector<double> seconds;
};

/// The fits plus their underlying measurements.
struct EmpiricalBuild {
  models::EmpiricalFits fits;
  std::map<std::pair<dag::TaskKernel, int>, FitData> exec_data;
  FitData startup_data;
  FitData redist_data;
};

class RegressionBuilder {
 public:
  explicit RegressionBuilder(const Profiler& profiler)
      : profiler_(profiler) {}

  /// Measures per `plan` (with `cfg` trial counts and workload dimensions)
  /// and fits the empirical models of Table II.
  EmpiricalBuild build(const ProfileConfig& cfg, const SamplePlan& plan) const;

 private:
  const Profiler& profiler_;
};

}  // namespace mtsched::profiling
